//! The in-memory backend: an unbounded store of fixed-size blocks, backed by
//! one contiguous slab arena.
//!
//! Slot `i` owns the record range `data[i*B .. (i+1)*B]`; a parallel `lens`
//! array records how many of those cells are live (the last block of an
//! array may be partial). Released slots go on a free list and are reused by
//! the next allocation, so a long-running simulation settles into a fixed
//! arena with **zero per-block heap allocations**: every transfer is a
//! `memcpy` into or out of the slab.

use crate::store::{BlockId, BlockStore, SlotTable};
use asym_model::{Record, Result};

/// Unbounded in-memory secondary memory, block-granular (the default
/// [`BlockStore`] backend).
///
/// `MemStore` does no cost accounting — that is [`crate::EmMachine`]'s job.
/// It only stores blocks and recycles freed slots (through the `SlotTable`
/// shared with every backend, so the slot schedule is identical across
/// backends by construction). All I/O-shaped methods take or fill
/// caller-owned buffers; nothing on the transfer path allocates.
#[derive(Debug, Default)]
pub struct MemStore {
    /// The slab arena: slot `i` owns `data[i*B .. (i+1)*B]`.
    data: Vec<Record>,
    /// Slot bookkeeping (lengths, free list, live count).
    slots: SlotTable,
    block_size: usize,
}

/// The pre-trait name of [`MemStore`], kept so existing code and tests keep
/// compiling unchanged.
pub type Disk = MemStore;

impl MemStore {
    /// An empty store with the given block size `B` (in records).
    pub fn new(block_size: usize) -> Self {
        assert!(block_size >= 1, "block size must be positive");
        Self {
            data: Vec::new(),
            slots: SlotTable::default(),
            block_size,
        }
    }

    /// The block size `B` this store was built with.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Copy `records` into a fresh slot, returning its id. Panics if the
    /// block is overfull.
    pub fn alloc(&mut self, records: &[Record]) -> BlockId {
        assert!(
            records.len() <= self.block_size,
            "block of {} records exceeds B={}",
            records.len(),
            self.block_size
        );
        let slot = self.slots.acquire(records.len());
        let end = (slot + 1) * self.block_size;
        if self.data.len() < end {
            self.data.resize(end, Record::default());
        }
        let start = slot * self.block_size;
        self.data[start..start + records.len()].copy_from_slice(records);
        BlockId(slot)
    }

    /// Borrow a block's live records (in-memory backend only — a file-backed
    /// store has nothing to borrow from).
    pub fn slice(&self, id: BlockId) -> Result<&[Record]> {
        let len = self.slots.live_len(id)?;
        let start = id.index() * self.block_size;
        Ok(&self.data[start..start + len])
    }

    /// Copy a block out of secondary memory into `out` (cleared first). The
    /// caller reuses `out` across reads, so the steady state allocates
    /// nothing.
    pub fn read_into(&self, id: BlockId, out: &mut Vec<Record>) -> Result<()> {
        let src = self.slice(id)?;
        out.clear();
        out.extend_from_slice(src);
        Ok(())
    }

    /// Overwrite a block in place from `records`.
    pub fn write(&mut self, id: BlockId, records: &[Record]) -> Result<()> {
        assert!(
            records.len() <= self.block_size,
            "block of {} records exceeds B={}",
            records.len(),
            self.block_size
        );
        self.slots.set_len(id, records.len())?;
        let start = id.index() * self.block_size;
        self.data[start..start + records.len()].copy_from_slice(records);
        Ok(())
    }

    /// Release a block's slot for reuse.
    pub fn release(&mut self, id: BlockId) -> Result<()> {
        self.slots.release(id)
    }

    /// Number of live (allocated, unreleased) blocks.
    pub fn live_blocks(&self) -> usize {
        self.slots.live()
    }

    /// Total slots ever carved out of the arena (live + free).
    pub fn slots(&self) -> usize {
        self.slots.slots()
    }

    /// Uncharged peek for test oracles.
    pub fn peek(&self, id: BlockId) -> Option<&[Record]> {
        self.slice(id).ok()
    }
}

impl BlockStore for MemStore {
    fn block_size(&self) -> usize {
        MemStore::block_size(self)
    }

    fn alloc(&mut self, records: &[Record]) -> BlockId {
        MemStore::alloc(self, records)
    }

    fn read_into(&mut self, id: BlockId, out: &mut Vec<Record>) -> Result<()> {
        MemStore::read_into(self, id, out)
    }

    fn write(&mut self, id: BlockId, records: &[Record]) -> Result<()> {
        MemStore::write(self, id, records)
    }

    fn release(&mut self, id: BlockId) -> Result<()> {
        MemStore::release(self, id)
    }

    fn live_blocks(&self) -> usize {
        MemStore::live_blocks(self)
    }

    fn slots(&self) -> usize {
        MemStore::slots(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: u64) -> Record {
        Record::keyed(k)
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut d = MemStore::new(4);
        let id = d.alloc(&[rec(1), rec(2)]);
        assert_eq!(d.slice(id).unwrap(), &[rec(1), rec(2)]);
        let mut buf = Vec::new();
        d.read_into(id, &mut buf).unwrap();
        assert_eq!(buf, vec![rec(1), rec(2)]);
        d.write(id, &[rec(9)]).unwrap();
        d.read_into(id, &mut buf).unwrap();
        assert_eq!(buf, vec![rec(9)]);
        assert_eq!(d.block_size(), 4);
    }

    #[test]
    fn read_into_reuses_capacity() {
        let mut d = MemStore::new(4);
        let a = d.alloc(&[rec(1), rec(2), rec(3), rec(4)]);
        let b = d.alloc(&[rec(5)]);
        let mut buf = Vec::with_capacity(4);
        let ptr = buf.as_ptr();
        d.read_into(a, &mut buf).unwrap();
        d.read_into(b, &mut buf).unwrap();
        assert_eq!(buf, vec![rec(5)]);
        assert_eq!(ptr, buf.as_ptr(), "buffer must be reused, not reallocated");
    }

    #[test]
    fn release_recycles_slots() {
        let mut d = MemStore::new(2);
        let a = d.alloc(&[rec(1)]);
        let b = d.alloc(&[rec(2)]);
        assert_eq!(d.live_blocks(), 2);
        d.release(a).unwrap();
        assert_eq!(d.live_blocks(), 1);
        let c = d.alloc(&[rec(3)]);
        assert_eq!(c.index(), a.index(), "freed slot should be reused");
        assert_eq!(d.slice(b).unwrap(), &[rec(2)]);
        assert_eq!(d.slots(), 2, "arena must not grow past two slots");
    }

    #[test]
    fn stale_and_unknown_ids_error() {
        let mut d = MemStore::new(2);
        let a = d.alloc(&[rec(1)]);
        d.release(a).unwrap();
        assert!(d.slice(a).is_err());
        assert!(d.write(a, &[]).is_err());
        assert!(d.release(a).is_err());
        assert!(d.slice(BlockId(99)).is_err());
        let mut buf = Vec::new();
        assert!(d.read_into(BlockId(99), &mut buf).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds B")]
    fn overfull_block_rejected_on_alloc() {
        let mut d = MemStore::new(2);
        d.alloc(&[rec(1), rec(2), rec(3)]);
    }

    #[test]
    #[should_panic(expected = "exceeds B")]
    fn overfull_block_rejected_on_write() {
        let mut d = MemStore::new(2);
        let id = d.alloc(&[rec(1)]);
        let _ = d.write(id, &[rec(1), rec(2), rec(3)]);
    }

    #[test]
    fn peek_is_uncharged_window() {
        let mut d = MemStore::new(2);
        let id = d.alloc(&[rec(7)]);
        assert_eq!(d.peek(id).unwrap()[0], rec(7));
        assert!(d.peek(BlockId(5)).is_none());
    }

    #[test]
    fn partial_blocks_shrink_and_grow_in_place() {
        let mut d = MemStore::new(4);
        let id = d.alloc(&[rec(1), rec(2), rec(3)]);
        d.write(id, &[rec(8)]).unwrap();
        assert_eq!(d.slice(id).unwrap(), &[rec(8)]);
        d.write(id, &[rec(4), rec(5), rec(6), rec(7)]).unwrap();
        assert_eq!(d.slice(id).unwrap(), &[rec(4), rec(5), rec(6), rec(7)]);
    }

    #[test]
    fn trait_object_dispatch_matches_inherent_api() {
        let mut boxed: Box<dyn BlockStore> = Box::new(MemStore::new(3));
        let id = boxed.alloc(&[rec(4), rec(5)]);
        let mut buf = Vec::new();
        boxed.read_into(id, &mut buf).unwrap();
        assert_eq!(buf, vec![rec(4), rec(5)]);
        boxed.peek_into(id, &mut buf).unwrap();
        assert_eq!(buf, vec![rec(4), rec(5)]);
        assert_eq!((boxed.live_blocks(), boxed.slots()), (1, 1));
        boxed.release(id).unwrap();
        assert_eq!(boxed.live_blocks(), 0);
        assert_eq!(boxed.block_size(), 3);
    }
}

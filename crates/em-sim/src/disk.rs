//! Secondary memory: an unbounded store of fixed-size blocks.

use asym_model::{ModelError, Record, Result};

/// Handle to one block of secondary memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) usize);

impl BlockId {
    /// The raw slot index (stable for the life of the block).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One block: up to `B` records (the last block of an array may be partial).
pub type Block = Vec<Record>;

/// Unbounded secondary memory, block-granular.
///
/// `Disk` does no cost accounting — that is [`super::EmMachine`]'s job. It
/// only stores blocks and recycles freed slots.
#[derive(Debug, Default)]
pub struct Disk {
    slots: Vec<Option<Block>>,
    free: Vec<usize>,
    block_size: usize,
}

impl Disk {
    /// An empty disk with the given block size `B` (in records).
    pub fn new(block_size: usize) -> Self {
        assert!(block_size >= 1, "block size must be positive");
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            block_size,
        }
    }

    /// The block size `B` this disk was built with.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Store a new block, returning its id. Panics if the block is overfull.
    pub fn alloc(&mut self, block: Block) -> BlockId {
        assert!(
            block.len() <= self.block_size,
            "block of {} records exceeds B={}",
            block.len(),
            self.block_size
        );
        if let Some(slot) = self.free.pop() {
            self.slots[slot] = Some(block);
            BlockId(slot)
        } else {
            self.slots.push(Some(block));
            BlockId(self.slots.len() - 1)
        }
    }

    /// Copy a block out of secondary memory.
    pub fn read(&self, id: BlockId) -> Result<Block> {
        self.slots
            .get(id.0)
            .and_then(|s| s.as_ref())
            .cloned()
            .ok_or(ModelError::BadBlock(id.0))
    }

    /// Overwrite a block in place.
    pub fn write(&mut self, id: BlockId, block: Block) -> Result<()> {
        assert!(
            block.len() <= self.block_size,
            "block of {} records exceeds B={}",
            block.len(),
            self.block_size
        );
        match self.slots.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                *slot = Some(block);
                Ok(())
            }
            _ => Err(ModelError::BadBlock(id.0)),
        }
    }

    /// Release a block's slot for reuse.
    pub fn release(&mut self, id: BlockId) -> Result<()> {
        match self.slots.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.free.push(id.0);
                Ok(())
            }
            _ => Err(ModelError::BadBlock(id.0)),
        }
    }

    /// Number of live (allocated, unreleased) blocks.
    pub fn live_blocks(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Uncharged peek for test oracles.
    pub fn peek(&self, id: BlockId) -> Option<&Block> {
        self.slots.get(id.0).and_then(|s| s.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: u64) -> Record {
        Record::keyed(k)
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut d = Disk::new(4);
        let id = d.alloc(vec![rec(1), rec(2)]);
        assert_eq!(d.read(id).unwrap(), vec![rec(1), rec(2)]);
        d.write(id, vec![rec(9)]).unwrap();
        assert_eq!(d.read(id).unwrap(), vec![rec(9)]);
        assert_eq!(d.block_size(), 4);
    }

    #[test]
    fn release_recycles_slots() {
        let mut d = Disk::new(2);
        let a = d.alloc(vec![rec(1)]);
        let b = d.alloc(vec![rec(2)]);
        assert_eq!(d.live_blocks(), 2);
        d.release(a).unwrap();
        assert_eq!(d.live_blocks(), 1);
        let c = d.alloc(vec![rec(3)]);
        assert_eq!(c.index(), a.index(), "freed slot should be reused");
        assert_eq!(d.read(b).unwrap(), vec![rec(2)]);
    }

    #[test]
    fn stale_and_unknown_ids_error() {
        let mut d = Disk::new(2);
        let a = d.alloc(vec![rec(1)]);
        d.release(a).unwrap();
        assert!(d.read(a).is_err());
        assert!(d.write(a, vec![]).is_err());
        assert!(d.release(a).is_err());
        assert!(d.read(BlockId(99)).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds B")]
    fn overfull_block_rejected_on_alloc() {
        let mut d = Disk::new(2);
        d.alloc(vec![rec(1), rec(2), rec(3)]);
    }

    #[test]
    #[should_panic(expected = "exceeds B")]
    fn overfull_block_rejected_on_write() {
        let mut d = Disk::new(2);
        let id = d.alloc(vec![rec(1)]);
        let _ = d.write(id, vec![rec(1), rec(2), rec(3)]);
    }

    #[test]
    fn peek_is_uncharged_window() {
        let mut d = Disk::new(2);
        let id = d.alloc(vec![rec(7)]);
        assert_eq!(d.peek(id).unwrap()[0], rec(7));
        assert!(d.peek(BlockId(5)).is_none());
    }
}

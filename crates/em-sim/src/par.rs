//! The sharded AEM machine: one [`EmMachine`] lane per simulated worker.
//!
//! The paper's parallel results (§4–§5) bound the *work* — total transfer
//! cost across all processors, writes still weighted ω — and the *span* of
//! the schedule. `ParMachine` makes the work side executable: it shards one
//! machine configuration into `p` independent lanes, each a full
//! [`EmMachine`] with its own [`BlockStore`](crate::BlockStore) and its own
//! [`EmStats`], so a parallel algorithm charges every modeled transfer to
//! the lane that performs it. [`ParMachine::merged_stats`] folds the lanes
//! with [`EmStats::merge`] into the work aggregate; span is not a fold over
//! stats and is tracked per phase by `wd_sim::Cost` in the algorithm layer.
//!
//! Lanes are plain sequential machines — the scheduler that interleaves
//! them is simulated (`wd_sim::sched`), so the whole structure stays
//! single-threaded and deterministic. Every lane runs on the same backend,
//! selected exactly like a single machine's ([`Backend::Mem`] slab arenas
//! or one temp file per lane with [`Backend::File`]).
//!
//! ```
//! use em_sim::{EmConfig, ParMachine};
//! use asym_model::Record;
//! let par = ParMachine::new(EmConfig::new(64, 8, 16), 4);
//! par.lane(0).append_block_from(&[Record::keyed(1)]); // ω on lane 0
//! par.lane(3).charge_reads(2);                        // 2 reads on lane 3
//! let merged = par.merged_stats();
//! assert_eq!((merged.block_reads, merged.block_writes), (2, 1));
//! assert_eq!(par.io_work(), 2 + 16);
//! ```

use crate::machine::{EmConfig, EmMachine, EmStats};
use crate::store::Backend;
use asym_model::Result;

/// A bank of per-worker [`EmMachine`] lanes sharing one configuration.
pub struct ParMachine {
    lanes: Vec<EmMachine>,
}

impl ParMachine {
    /// `lanes` independent machines with configuration `cfg` on the default
    /// in-memory backend.
    pub fn new(cfg: EmConfig, lanes: usize) -> Self {
        Self::with_backend(cfg, lanes, Backend::Mem).expect("in-memory lanes cannot fail")
    }

    /// `lanes` independent machines on the given [`Backend`]. The file
    /// backend creates one temp file per lane and can fail cleanly.
    pub fn with_backend(cfg: EmConfig, lanes: usize, backend: Backend) -> Result<Self> {
        assert!(lanes >= 1, "a machine needs at least one lane");
        let lanes = (0..lanes)
            .map(|_| EmMachine::with_backend(cfg, backend))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { lanes })
    }

    /// Assemble a bank from caller-built machines (custom stores, or lanes
    /// whose backing files live in a chosen directory). All lanes must share
    /// one configuration — the parallel algorithms assume a uniform geometry
    /// and read ω off lane 0.
    pub fn from_lanes(lanes: Vec<EmMachine>) -> Self {
        assert!(!lanes.is_empty(), "a machine needs at least one lane");
        let cfg = lanes[0].cfg();
        assert!(
            lanes.iter().all(|l| l.cfg() == cfg),
            "every lane must share one EmConfig"
        );
        Self { lanes }
    }

    /// Number of lanes (simulated workers).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Lane `i`'s machine. Panics on an out-of-range lane — worker indices
    /// are structural, not data-dependent.
    pub fn lane(&self, i: usize) -> &EmMachine {
        &self.lanes[i]
    }

    /// Iterate over the lanes in worker order.
    pub fn iter(&self) -> impl Iterator<Item = &EmMachine> {
        self.lanes.iter()
    }

    /// The shared configuration (every lane has the same geometry and ω).
    pub fn cfg(&self) -> EmConfig {
        self.lanes[0].cfg()
    }

    /// The backend every lane's secondary memory runs on.
    pub fn backend(&self) -> Backend {
        self.lanes[0].backend()
    }

    /// Write cost ω (shared by all lanes).
    pub fn omega(&self) -> u64 {
        self.lanes[0].omega()
    }

    /// Per-lane transfer statistics, in worker order.
    pub fn lane_stats(&self) -> Vec<EmStats> {
        self.lanes.iter().map(EmMachine::stats).collect()
    }

    /// The work aggregate across lanes (see [`EmStats::merge`]).
    pub fn merged_stats(&self) -> EmStats {
        EmStats::merge_all(self.lanes.iter().map(EmMachine::stats))
    }

    /// Total asymmetric I/O work across lanes: `reads + ω·writes`.
    pub fn io_work(&self) -> u64 {
        let s = self.merged_stats();
        s.block_reads + self.omega() * s.block_writes
    }

    /// Live blocks summed over every lane's store.
    pub fn live_blocks(&self) -> usize {
        self.lanes.iter().map(EmMachine::live_blocks).sum()
    }

    /// Reset every lane's counters (disk contents and leases are kept).
    pub fn reset_stats(&self) {
        for lane in &self.lanes {
            lane.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::Record;

    fn recs(keys: &[u64]) -> Vec<Record> {
        keys.iter().map(|&k| Record::keyed(k)).collect()
    }

    #[test]
    fn lanes_charge_independently_and_merge_as_work() {
        let par = ParMachine::new(EmConfig::new(16, 4, 8), 3);
        let id = par.lane(0).append_block_from(&recs(&[1, 2]));
        let mut buf = Vec::new();
        par.lane(0).read_block_into(id, &mut buf).unwrap();
        par.lane(2).charge_writes(3);
        let per = par.lane_stats();
        assert_eq!((per[0].block_reads, per[0].block_writes), (1, 1));
        assert_eq!((per[1].block_reads, per[1].block_writes), (0, 0));
        assert_eq!((per[2].block_reads, per[2].block_writes), (0, 3));
        let merged = par.merged_stats();
        assert_eq!((merged.block_reads, merged.block_writes), (1, 4));
        assert_eq!(par.io_work(), 1 + 8 * 4);
    }

    #[test]
    fn merge_sums_peaks_as_simultaneous_upper_bound() {
        let par = ParMachine::new(EmConfig::new(16, 4, 2), 2);
        let a = par.lane(0).lease(10).unwrap();
        let b = par.lane(1).lease(6).unwrap();
        drop((a, b));
        assert_eq!(par.merged_stats().peak_memory, 16);
    }

    #[test]
    fn lanes_have_separate_stores() {
        let par = ParMachine::new(EmConfig::new(16, 4, 2), 2);
        let id = par.lane(0).append_block_from(&recs(&[7]));
        assert_eq!(par.lane(0).live_blocks(), 1);
        assert_eq!(par.lane(1).live_blocks(), 0);
        assert_eq!(par.live_blocks(), 1);
        // The same BlockId is unknown on the other lane's store.
        let mut buf = Vec::new();
        assert!(par.lane(1).read_block_into(id, &mut buf).is_err());
    }

    #[test]
    fn file_backend_builds_one_store_per_lane() {
        let cfg = EmConfig::new(16, 4, 4);
        let par = ParMachine::with_backend(cfg, 2, Backend::File).expect("temp files");
        assert_eq!(par.backend(), Backend::File);
        assert_eq!(par.lanes(), 2);
        for i in 0..2 {
            let id = par.lane(i).append_block_from(&recs(&[i as u64]));
            let mut buf = Vec::new();
            par.lane(i).read_block_into(id, &mut buf).unwrap();
            assert_eq!(buf, recs(&[i as u64]));
        }
        let merged = par.merged_stats();
        assert_eq!((merged.block_reads, merged.block_writes), (2, 2));
    }

    #[test]
    fn reset_clears_every_lane() {
        let par = ParMachine::new(EmConfig::new(16, 4, 2), 2);
        par.lane(0).charge_reads(5);
        par.lane(1).charge_writes(5);
        par.reset_stats();
        assert_eq!(par.merged_stats(), EmStats::default());
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = ParMachine::new(EmConfig::new(16, 4, 2), 0);
    }

    #[test]
    fn from_lanes_accepts_uniform_machines() {
        let cfg = EmConfig::new(16, 4, 4);
        let par = ParMachine::from_lanes(vec![EmMachine::new(cfg), EmMachine::new(cfg)]);
        assert_eq!(par.lanes(), 2);
        assert_eq!(par.cfg(), cfg);
    }

    #[test]
    #[should_panic(expected = "share one EmConfig")]
    fn from_lanes_rejects_mixed_geometry() {
        let _ = ParMachine::from_lanes(vec![
            EmMachine::new(EmConfig::new(16, 4, 4)),
            EmMachine::new(EmConfig::new(32, 4, 4)),
        ]);
    }
}

//! Disk-resident arrays with buffered block-granular cursors.
//!
//! [`EmVec`] is the standard shape of data in the AEM algorithms: a sequence
//! of records stored in consecutive blocks (all full except possibly the
//! last). [`EmReader`] and [`EmWriter`] stream over it one block at a time,
//! holding a one-block primary-memory lease while open — exactly the load
//! buffer / store buffer discipline of Algorithm 2. Each cursor owns one
//! reusable block buffer that is filled (or drained) in place, so streaming
//! I/O allocates nothing after the cursor is opened.

use crate::machine::{EmMachine, MemLease};
use crate::store::BlockId;
use asym_model::{Record, Result};

/// A disk-resident array of records.
#[derive(Debug)]
pub struct EmVec {
    blocks: Vec<BlockId>,
    len: usize,
}

impl EmVec {
    /// An empty array.
    pub fn empty() -> Self {
        Self {
            blocks: Vec::new(),
            len: 0,
        }
    }

    /// Stage `records` onto disk **uncharged** (problem input setup).
    pub fn stage(machine: &EmMachine, records: &[Record]) -> Self {
        Self {
            blocks: machine.stage_input(records),
            len: records.len(),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block ids, in order.
    pub fn block_ids(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Assemble from explicit blocks (caller guarantees only the final block
    /// may be partial).
    pub fn from_blocks(blocks: Vec<BlockId>, len: usize) -> Self {
        Self { blocks, len }
    }

    /// Split into `parts` contiguous sub-arrays at block granularity
    /// (consumes the array; no I/O is charged — this is pointer bookkeeping).
    ///
    /// Fewer than `parts` pieces are returned when there are not enough
    /// blocks. Every piece except possibly the last consists of full blocks.
    pub fn split_blocks(self, parts: usize, b: usize) -> Vec<EmVec> {
        assert!(parts >= 1);
        let nblocks = self.blocks.len();
        if nblocks == 0 {
            return vec![EmVec::empty()];
        }
        let per = nblocks.div_ceil(parts);
        let mut out = Vec::new();
        let mut remaining = self.len;
        for chunk in self.blocks.chunks(per) {
            let full = chunk.len() * b;
            let piece_len = full.min(remaining);
            remaining -= piece_len;
            out.push(EmVec {
                blocks: chunk.to_vec(),
                len: piece_len,
            });
        }
        debug_assert_eq!(remaining, 0);
        out
    }

    /// Charged sequential reader over the records.
    pub fn reader<'a>(&'a self, machine: &EmMachine) -> Result<EmReader<'a>> {
        let lease = machine.lease(machine.b())?;
        Ok(EmReader {
            machine: machine.clone(),
            blocks: &self.blocks,
            len: self.len,
            next_block: 0,
            buf: Vec::with_capacity(machine.b()),
            buf_pos: 0,
            consumed: 0,
            _lease: lease,
        })
    }

    /// Uncharged copy of all records (test oracles and experiment setup only).
    pub fn read_all_uncharged(&self, machine: &EmMachine) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.len);
        let mut buf = Vec::with_capacity(machine.b());
        for id in &self.blocks {
            machine.peek_block_into(*id, &mut buf).expect("live block");
            out.extend_from_slice(&buf);
        }
        out.truncate(self.len);
        out
    }

    /// Release all blocks back to the disk.
    pub fn free(self, machine: &EmMachine) {
        for id in self.blocks {
            machine.release_block(id).expect("double free");
        }
    }
}

/// Buffered sequential reader (holds a one-block lease while open). The load
/// buffer is allocated once at open and refilled in place per block.
pub struct EmReader<'a> {
    machine: EmMachine,
    blocks: &'a [BlockId],
    len: usize,
    next_block: usize,
    buf: Vec<Record>,
    buf_pos: usize,
    consumed: usize,
    _lease: MemLease,
}

impl<'a> EmReader<'a> {
    /// Records remaining.
    pub fn remaining(&self) -> usize {
        self.len - self.consumed
    }

    /// Look at the next record without consuming it (may incur a block read).
    pub fn peek(&mut self) -> Option<Record> {
        if self.consumed == self.len {
            return None;
        }
        if self.buf_pos == self.buf.len() {
            let id = self.blocks[self.next_block];
            // This cursor has no `Result` channel, so an injected device
            // fault unwinds as a typed `StoreIoPanic` a supervisor can
            // downcast and retry; any other failure here is a real bug.
            match self.machine.read_block_into(id, &mut self.buf) {
                Ok(()) => {}
                Err(e @ asym_model::ModelError::Io(_)) => {
                    std::panic::panic_any(crate::fault::StoreIoPanic(e))
                }
                Err(e) => panic!("live block: {e}"),
            }
            self.next_block += 1;
            self.buf_pos = 0;
        }
        Some(self.buf[self.buf_pos])
    }

    /// Consume and return the next record.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Record> {
        let r = self.peek()?;
        self.buf_pos += 1;
        self.consumed += 1;
        Some(r)
    }

    /// Drain everything left into a vector (charges the remaining block reads;
    /// caller is responsible for having leased space for the result).
    pub fn drain(mut self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.remaining());
        while let Some(r) = self.next() {
            out.push(r);
        }
        out
    }
}

/// Buffered sequential writer (holds a one-block lease while open; each flush
/// of the store buffer charges one ω-cost block write). The store buffer is
/// allocated once at open and cleared — never reallocated — on flush.
pub struct EmWriter {
    machine: EmMachine,
    blocks: Vec<BlockId>,
    buf: Vec<Record>,
    len: usize,
    _lease: MemLease,
}

impl EmWriter {
    /// Open a writer on `machine`.
    pub fn new(machine: &EmMachine) -> Result<Self> {
        let lease = machine.lease(machine.b())?;
        Ok(Self {
            machine: machine.clone(),
            blocks: Vec::new(),
            buf: Vec::with_capacity(machine.b()),
            len: 0,
            _lease: lease,
        })
    }

    /// Append one record, flushing the store buffer when it fills.
    pub fn push(&mut self, r: Record) {
        self.buf.push(r);
        self.len += 1;
        if self.buf.len() == self.machine.b() {
            self.flush();
        }
    }

    /// Append many records.
    pub fn extend(&mut self, rs: impl IntoIterator<Item = Record>) {
        for r in rs {
            self.push(r);
        }
    }

    /// Records written so far (including any still in the buffer).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.blocks.push(self.machine.append_block_from(&self.buf));
        self.buf.clear();
    }

    /// Flush the final partial block and return the finished array.
    pub fn finish(mut self) -> EmVec {
        self.flush();
        EmVec {
            blocks: std::mem::take(&mut self.blocks),
            len: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::EmConfig;

    fn machine() -> EmMachine {
        EmMachine::new(EmConfig::new(64, 4, 8))
    }

    fn recs(n: usize) -> Vec<Record> {
        (0..n as u64).map(Record::keyed).collect()
    }

    #[test]
    fn stage_and_read_all_roundtrip() {
        let em = machine();
        let data = recs(11);
        let v = EmVec::stage(&em, &data);
        assert_eq!(v.len(), 11);
        assert_eq!(v.num_blocks(), 3);
        assert_eq!(v.read_all_uncharged(&em), data);
        assert_eq!(em.stats().block_reads, 0, "staging and peeking are free");
    }

    #[test]
    fn reader_charges_one_read_per_block() {
        let em = machine();
        let data = recs(10);
        let v = EmVec::stage(&em, &data);
        let mut r = v.reader(&em).unwrap();
        let mut got = Vec::new();
        while let Some(x) = r.next() {
            got.push(x);
        }
        assert_eq!(got, data);
        assert_eq!(em.stats().block_reads, 3); // ceil(10/4)
        assert_eq!(em.stats().block_writes, 0);
    }

    #[test]
    fn writer_charges_one_write_per_block() {
        let em = machine();
        let mut w = EmWriter::new(&em).unwrap();
        w.extend(recs(10));
        assert_eq!(w.len(), 10);
        let v = w.finish();
        assert_eq!(v.len(), 10);
        assert_eq!(em.stats().block_writes, 3);
        assert_eq!(v.read_all_uncharged(&em), recs(10));
    }

    #[test]
    fn cursors_do_not_reallocate_their_buffers() {
        let em = machine();
        let v = EmVec::stage(&em, &recs(40)); // 10 full blocks
        let mut r = v.reader(&em).unwrap();
        let mut ptr = None;
        let mut w = EmWriter::new(&em).unwrap();
        let wptr = w.buf.as_ptr();
        while let Some(x) = r.next() {
            let p = r.buf.as_ptr();
            assert_eq!(*ptr.get_or_insert(p), p, "load buffer must be stable");
            w.push(x);
            assert_eq!(w.buf.as_ptr(), wptr, "store buffer must be stable");
        }
        assert_eq!(w.finish().read_all_uncharged(&em), recs(40));
    }

    #[test]
    fn peek_does_not_consume() {
        let em = machine();
        let v = EmVec::stage(&em, &recs(5));
        let mut r = v.reader(&em).unwrap();
        assert_eq!(r.peek(), Some(Record::keyed(0)));
        assert_eq!(r.peek(), Some(Record::keyed(0)));
        assert_eq!(r.next(), Some(Record::keyed(0)));
        assert_eq!(r.remaining(), 4);
        assert_eq!(r.drain(), recs(5)[1..].to_vec());
    }

    #[test]
    fn cursors_hold_block_leases() {
        let em = EmMachine::new(EmConfig::new(8, 4, 2));
        let v = EmVec::stage(&em, &recs(8));
        let _r = v.reader(&em).unwrap();
        assert_eq!(em.mem_used(), 4);
        let _w = EmWriter::new(&em).unwrap();
        assert_eq!(em.mem_used(), 8);
        // Third cursor would exceed M=8.
        assert!(v.reader(&em).is_err());
    }

    #[test]
    fn split_blocks_partitions_at_block_granularity() {
        let em = machine();
        let v = EmVec::stage(&em, &recs(17)); // 5 blocks: 4+4+4+4+1
        let parts = v.split_blocks(2, em.b());
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 12); // 3 full blocks
        assert_eq!(parts[1].len(), 5); // 1 full + 1 partial
        let all: Vec<Record> = parts
            .iter()
            .flat_map(|p| p.read_all_uncharged(&em))
            .collect();
        assert_eq!(all, recs(17));
    }

    #[test]
    fn split_blocks_of_empty_is_single_empty() {
        let em = machine();
        let v = EmVec::stage(&em, &[]);
        let parts = v.split_blocks(3, em.b());
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_empty());
    }

    #[test]
    fn split_more_parts_than_blocks_gives_per_block_pieces() {
        let em = machine();
        let v = EmVec::stage(&em, &recs(8)); // 2 blocks
        let parts = v.split_blocks(5, em.b());
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.len() == 4));
    }

    #[test]
    fn free_releases_blocks() {
        let em = machine();
        let v = EmVec::stage(&em, &recs(9));
        assert_eq!(em.live_blocks(), 3);
        v.free(&em);
        assert_eq!(em.live_blocks(), 0);
    }

    #[test]
    fn empty_writer_finishes_to_empty_vec() {
        let em = machine();
        let w = EmWriter::new(&em).unwrap();
        assert!(w.is_empty());
        let v = w.finish();
        assert!(v.is_empty());
        assert_eq!(v.num_blocks(), 0);
        assert_eq!(em.stats().block_writes, 0);
    }
}

//! The pluggable secondary-memory interface.
//!
//! [`BlockStore`] abstracts the block device underneath [`crate::EmMachine`]:
//! an unbounded set of fixed-size block slots addressed by [`BlockId`], with
//! alloc / overwrite / read / release and live-slot accounting. Two backends
//! implement it:
//!
//! * [`crate::MemStore`] — the zero-alloc slab arena (the default). Every
//!   transfer is a `memcpy`; this is what all modeled-cost experiments run on.
//! * [`crate::FileStore`] — a real temp file, one slot per fixed-size byte
//!   range, driven through `std::fs` seeks and reads/writes. This backend
//!   actually performs I/O, so wall-clock time through it can be compared
//!   against the modeled `reads + ω·writes` charge.
//!
//! Modeled costs are **backend-independent by construction**: the machine
//! counts one read per `read_block_into` and ω per block write *before*
//! delegating to the store, so swapping backends can never change
//! `EmStats` — only how long the same transfer schedule takes on real
//! hardware. The backend-parity test suite pins this down for E3/E5/E6.
//!
//! ## Contract
//!
//! Beyond the per-method requirements below, backends must agree on **slot
//! reuse order**: released slots are recycled LIFO (most recently released
//! first), and fresh slots are carved in increasing index order. Algorithms
//! never inspect raw indices, but keeping the allocation schedule identical
//! across backends makes whole-run comparisons (same `BlockId` sequence, same
//! final layout) exact rather than merely equivalent. Both in-tree backends
//! inherit this by construction from the crate-private `SlotTable` they
//! embed — a new backend should embed it too rather than re-implementing
//! the free list.

use asym_model::{ModelError, Record, Result};

/// Handle to one block of secondary memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) usize);

impl BlockId {
    /// The raw slot index (stable for the life of the block).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A block device: fixed-size slots holding up to `B` records each.
///
/// Stores do no cost accounting — that is [`crate::EmMachine`]'s job. They
/// only hold blocks and recycle freed slots. All I/O-shaped methods take or
/// fill caller-owned buffers, so the in-memory backend's transfer path
/// performs no heap allocation.
pub trait BlockStore {
    /// The block size `B` this store was built with, in records.
    fn block_size(&self) -> usize;

    /// Copy `records` into a fresh slot, returning its id.
    ///
    /// Panics if `records.len() > B` (an overfull block is a caller bug, not
    /// a device condition) or if the backing device fails mid-run.
    fn alloc(&mut self, records: &[Record]) -> BlockId;

    /// Copy a block out of secondary memory into `out` (cleared first). The
    /// caller reuses `out` across reads, so the steady state allocates
    /// nothing.
    fn read_into(&mut self, id: BlockId, out: &mut Vec<Record>) -> Result<()>;

    /// Overwrite a block in place from `records`. Panics if overfull.
    fn write(&mut self, id: BlockId, records: &[Record]) -> Result<()>;

    /// Release a block's slot for reuse.
    fn release(&mut self, id: BlockId) -> Result<()>;

    /// Number of live (allocated, unreleased) blocks.
    fn live_blocks(&self) -> usize;

    /// Total slots ever carved out of the store (live + free).
    fn slots(&self) -> usize;

    /// Uncharged read for test oracles: like [`BlockStore::read_into`] but
    /// semantically "not a modeled transfer". Backends may implement it as a
    /// plain read.
    fn peek_into(&mut self, id: BlockId, out: &mut Vec<Record>) -> Result<()> {
        self.read_into(id, out)
    }
}

/// Shared slot bookkeeping: live lengths, the LIFO free list, and the live
/// counter.
///
/// Both backends embed this one struct, so the "identical `BlockId`
/// schedule" guarantee of the [`BlockStore`] contract is true by
/// construction — there is exactly one implementation of slot acquisition
/// and reuse order to keep correct. Backends only supply the byte/record
/// storage for each slot.
#[derive(Debug, Default)]
pub(crate) struct SlotTable {
    /// Live record count per slot (`FREE` marks a released slot).
    lens: Vec<usize>,
    /// Released slot indices awaiting reuse (LIFO).
    free: Vec<usize>,
    /// Allocated, unreleased slot count (kept so `live` is O(1)).
    live: usize,
}

/// Length sentinel marking a released slot.
const FREE: usize = usize::MAX;

impl SlotTable {
    /// Claim a slot for a block of `len` records: the most recently released
    /// slot if any, else a fresh slot at the end. Returns the slot index.
    pub(crate) fn acquire(&mut self, len: usize) -> usize {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.lens.push(FREE);
                self.lens.len() - 1
            }
        };
        self.lens[slot] = len;
        self.live += 1;
        slot
    }

    /// The live length of `id`'s slot, or `BadBlock` if released/unknown.
    pub(crate) fn live_len(&self, id: BlockId) -> Result<usize> {
        match self.lens.get(id.0) {
            Some(&len) if len != FREE => Ok(len),
            _ => Err(ModelError::BadBlock(id.0)),
        }
    }

    /// Record a new live length for an (already live) slot.
    pub(crate) fn set_len(&mut self, id: BlockId, len: usize) -> Result<()> {
        self.live_len(id)?;
        self.lens[id.0] = len;
        Ok(())
    }

    /// Release a live slot back onto the free list.
    pub(crate) fn release(&mut self, id: BlockId) -> Result<()> {
        self.live_len(id)?;
        self.lens[id.0] = FREE;
        self.free.push(id.0);
        self.live -= 1;
        Ok(())
    }

    /// Number of live (allocated, unreleased) slots.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever carved out (live + free).
    pub(crate) fn slots(&self) -> usize {
        self.lens.len()
    }
}

/// Which [`BlockStore`] implementation a machine should use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The in-memory slab arena ([`crate::MemStore`]) — the default.
    #[default]
    Mem,
    /// A real temp file ([`crate::FileStore`]).
    File,
    /// A caller-supplied store handed to [`crate::EmMachine::with_store`]
    /// (out-of-tree backends and fault-injection wrappers). Not selectable
    /// via [`Backend::parse`] / [`BACKEND_ENV`] — custom stores are
    /// constructed in code, not named on a command line.
    Custom,
}

/// The environment variable naming a [`Backend`] (`mem` or `file`), honored
/// by the `asym-bench` harness and the examples. This crate only names the
/// variable; the single parsing point for its value is
/// `asym_core::sort::env_backend` (a typed error, never a silent fallback),
/// which every workspace consumer routes through.
pub const BACKEND_ENV: &str = "ASYM_BENCH_BACKEND";

impl Backend {
    /// Parse a backend name (`"mem"` or `"file"`).
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "mem" => Some(Backend::Mem),
            "file" => Some(Backend::File),
            _ => None,
        }
    }

    /// The backend's lowercase name (as accepted by [`Backend::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Mem => "mem",
            Backend::File => "file",
            Backend::Custom => "custom",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_table_reuses_lifo_and_tracks_live() {
        let mut t = SlotTable::default();
        assert_eq!(t.acquire(3), 0);
        assert_eq!(t.acquire(1), 1);
        assert_eq!(t.acquire(2), 2);
        assert_eq!((t.live(), t.slots()), (3, 3));
        t.release(BlockId(0)).unwrap();
        t.release(BlockId(2)).unwrap();
        assert_eq!(t.live(), 1);
        // LIFO: most recently released first; fresh slots only after the
        // free list drains.
        assert_eq!(t.acquire(4), 2);
        assert_eq!(t.acquire(4), 0);
        assert_eq!(t.acquire(4), 3);
        assert_eq!(t.live_len(BlockId(1)).unwrap(), 1);
        assert_eq!(t.live_len(BlockId(2)).unwrap(), 4);
        t.set_len(BlockId(1), 0).unwrap();
        assert_eq!(t.live_len(BlockId(1)).unwrap(), 0);
        assert!(t.live_len(BlockId(9)).is_err());
        assert!(t.set_len(BlockId(9), 1).is_err());
        assert!(t.release(BlockId(9)).is_err());
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in [Backend::Mem, Backend::File] {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(Backend::parse("nvme"), None);
        // Custom stores are constructed in code, never named on a CLI.
        assert_eq!(Backend::parse("custom"), None);
        assert_eq!(Backend::Custom.name(), "custom");
        assert_eq!(Backend::default(), Backend::Mem);
    }
}

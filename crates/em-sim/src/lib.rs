//! # em-sim — the (Asymmetric) External Memory machine
//!
//! A faithful executable version of the AEM model of §2 of *Sorting with
//! Asymmetric Read and Write Costs* (SPAA 2015):
//!
//! * an unbounded **secondary memory** ([`Disk`]) partitioned into blocks of
//!   `B` records — stored as one contiguous slab arena with a free list, so
//!   block transfers are plain `memcpy`s and the transfer path performs no
//!   heap allocation;
//! * a **primary memory** of `M` records — not materialized as a separate
//!   store, but *enforced*: algorithms must lease capacity ([`EmMachine::lease`])
//!   for every in-memory buffer they hold, and leasing beyond the machine's
//!   capacity faults;
//! * two transfer instructions: [`EmMachine::read_block_into`] (cost 1) and
//!   [`EmMachine::write_block_from`] (cost ω), both operating on caller-owned,
//!   reused buffers.
//!
//! The I/O complexity of an algorithm is read directly off the machine's
//! counters: `block_reads + omega * block_writes`. RAM instructions on data in
//! primary memory are free, exactly as in the model.
//!
//! [`EmVec`] provides disk-resident arrays with buffered sequential readers
//! and writers, which is the access pattern every §4 algorithm uses.

pub mod disk;
pub mod machine;
pub mod vec;

pub use disk::{BlockId, Disk};
pub use machine::{EmConfig, EmMachine, EmStats, MemLease};
pub use vec::{EmReader, EmVec, EmWriter};

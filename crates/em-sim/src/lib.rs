//! # em-sim — the (Asymmetric) External Memory machine
//!
//! A faithful executable version of the AEM model of §2 of *Sorting with
//! Asymmetric Read and Write Costs* (SPAA 2015):
//!
//! * an unbounded **secondary memory** behind the pluggable [`BlockStore`]
//!   trait, partitioned into blocks of `B` records. The default backend
//!   ([`MemStore`]) is one contiguous slab arena with a free list, so block
//!   transfers are plain `memcpy`s and the transfer path performs no heap
//!   allocation; the [`FileStore`] backend maps the same slots onto a real
//!   temp file so modeled costs can be compared against measured I/O time
//!   (select it with [`EmMachine::with_backend`] or, in the bench harness,
//!   `ASYM_BENCH_BACKEND=file`);
//! * a **primary memory** of `M` records — not materialized as a separate
//!   store, but *enforced*: algorithms must lease capacity ([`EmMachine::lease`])
//!   for every in-memory buffer they hold, and leasing beyond the machine's
//!   capacity faults;
//! * two transfer instructions: [`EmMachine::read_block_into`] (cost 1) and
//!   [`EmMachine::write_block_from`] (cost ω), both operating on caller-owned,
//!   reused buffers.
//!
//! The I/O complexity of an algorithm is read directly off the machine's
//! counters: `block_reads + omega * block_writes`. RAM instructions on data in
//! primary memory are free, exactly as in the model.
//!
//! [`EmVec`] provides disk-resident arrays with buffered sequential readers
//! and writers, which is the access pattern every §4 algorithm uses.
//!
//! [`ParMachine`] shards one configuration into per-worker lanes (each an
//! independent [`EmMachine`]) so the §4–§5 *parallel* algorithms can charge
//! modeled transfers to the worker that performs them and merge the lanes
//! into work aggregates with [`EmStats::merge`].

//!
//! [`FaultStore`] wraps any backend with seeded fault injection (transient
//! `Interrupted` errors, short transfers, simulated crashes) so callers can
//! chaos-test their error paths without leaving the model.

pub mod disk;
pub mod fault;
pub mod file;
pub mod machine;
pub mod par;
pub mod store;
pub mod vec;

pub use disk::{Disk, MemStore};
pub use fault::{FaultCounts, FaultPlan, FaultSpec, FaultStore, StoreIoPanic};
pub use file::FileStore;
pub use machine::{EmConfig, EmMachine, EmStats, MemLease};
pub use par::ParMachine;
pub use store::{Backend, BlockId, BlockStore, BACKEND_ENV};
pub use vec::{EmReader, EmVec, EmWriter};

//! The file-backed backend: block slots mapped to fixed-size byte ranges of
//! a real temp file.
//!
//! `FileStore` performs genuine `std::fs` I/O — every modeled block transfer
//! becomes a seek plus a read or write of `B * 16` bytes (records serialize
//! as two little-endian `u64`s). Slot `i` owns the byte range
//! `[i * B * 16, (i+1) * B * 16)`; live-length and free-list bookkeeping
//! stays in host memory in the same `SlotTable` type [`crate::MemStore`]
//! uses (LIFO slot reuse, fresh slots in increasing index order), so a run
//! on either backend produces the identical `BlockId` schedule by
//! construction.
//!
//! The store owns its temp file and deletes it on drop. Construction fails
//! cleanly (no panic) when the target directory is unwritable; mid-run device
//! failures surface as [`ModelError::Io`] from the fallible operations and as
//! panics from the infallible ones (`alloc`), matching the in-memory
//! backend's "an overfull block is a caller bug" posture.

use crate::store::{BlockId, BlockStore, SlotTable};
use asym_model::{ModelError, Record, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes per serialized record: `key: u64` + `payload: u64`, little-endian.
const RECORD_BYTES: usize = 16;

/// Per-process counter making temp-file names unique.
static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(0);

fn io_err(e: std::io::Error) -> ModelError {
    ModelError::Io(e.to_string())
}

/// Block storage in a real temp file (the `file` [`BlockStore`] backend).
///
/// Same slot semantics as [`crate::MemStore`]; the block contents live on
/// disk instead of in a slab. One reused byte buffer carries every transfer,
/// so the steady-state I/O path allocates nothing on the heap.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    path: PathBuf,
    /// Slot bookkeeping — the same `SlotTable` as `MemStore`, so both
    /// backends produce the identical `BlockId` schedule by construction.
    slots: SlotTable,
    block_size: usize,
    /// Reused serialization buffer (one block's worth of bytes).
    byte_buf: Vec<u8>,
}

impl FileStore {
    /// A store with block size `B` (in records) backed by a fresh temp file
    /// in [`std::env::temp_dir`]. Fails with [`ModelError::Io`] if the file
    /// cannot be created.
    pub fn new(block_size: usize) -> Result<Self> {
        Self::new_in(std::env::temp_dir(), block_size)
    }

    /// Like [`FileStore::new`], but placing the backing file in `dir`
    /// (which must already exist and be writable).
    pub fn new_in(dir: impl AsRef<Path>, block_size: usize) -> Result<Self> {
        assert!(block_size >= 1, "block size must be positive");
        let seq = NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed);
        let path = dir.as_ref().join(format!(
            "asym-filestore-{}-{}.blocks",
            std::process::id(),
            seq
        ));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(Self {
            file,
            path,
            slots: SlotTable::default(),
            block_size,
            byte_buf: vec![0u8; block_size * RECORD_BYTES],
        })
    }

    /// The path of the backing temp file (deleted when the store drops).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The byte offset of slot `slot` in the backing file.
    fn offset(&self, slot: usize) -> u64 {
        (slot * self.block_size * RECORD_BYTES) as u64
    }

    /// Serialize `records` into the reused byte buffer and write them at
    /// `slot`'s offset.
    fn write_slot(&mut self, slot: usize, records: &[Record]) -> Result<()> {
        let nbytes = records.len() * RECORD_BYTES;
        for (i, r) in records.iter().enumerate() {
            self.byte_buf[i * RECORD_BYTES..i * RECORD_BYTES + 8]
                .copy_from_slice(&r.key.to_le_bytes());
            self.byte_buf[i * RECORD_BYTES + 8..(i + 1) * RECORD_BYTES]
                .copy_from_slice(&r.payload.to_le_bytes());
        }
        let off = self.offset(slot);
        self.file.seek(SeekFrom::Start(off)).map_err(io_err)?;
        self.file
            .write_all(&self.byte_buf[..nbytes])
            .map_err(io_err)
    }

    /// Read `len` records from `slot`'s offset into `out` (cleared first).
    fn read_slot(&mut self, slot: usize, len: usize, out: &mut Vec<Record>) -> Result<()> {
        let nbytes = len * RECORD_BYTES;
        let off = self.offset(slot);
        self.file.seek(SeekFrom::Start(off)).map_err(io_err)?;
        self.file
            .read_exact(&mut self.byte_buf[..nbytes])
            .map_err(io_err)?;
        out.clear();
        for chunk in self.byte_buf[..nbytes].chunks_exact(RECORD_BYTES) {
            out.push(Record::new(
                u64::from_le_bytes(chunk[..8].try_into().expect("8-byte key")),
                u64::from_le_bytes(chunk[8..].try_into().expect("8-byte payload")),
            ));
        }
        Ok(())
    }
}

impl BlockStore for FileStore {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn alloc(&mut self, records: &[Record]) -> BlockId {
        assert!(
            records.len() <= self.block_size,
            "block of {} records exceeds B={}",
            records.len(),
            self.block_size
        );
        let slot = self.slots.acquire(records.len());
        self.write_slot(slot, records)
            .expect("FileStore: block write failed");
        BlockId(slot)
    }

    fn read_into(&mut self, id: BlockId, out: &mut Vec<Record>) -> Result<()> {
        let len = self.slots.live_len(id)?;
        self.read_slot(id.0, len, out)
    }

    fn write(&mut self, id: BlockId, records: &[Record]) -> Result<()> {
        assert!(
            records.len() <= self.block_size,
            "block of {} records exceeds B={}",
            records.len(),
            self.block_size
        );
        self.slots.live_len(id)?;
        self.write_slot(id.0, records)?;
        self.slots.set_len(id, records.len())
    }

    fn release(&mut self, id: BlockId) -> Result<()> {
        self.slots.release(id)
    }

    fn live_blocks(&self) -> usize {
        self.slots.live()
    }

    fn slots(&self) -> usize {
        self.slots.slots()
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        // Best-effort cleanup; a vanished temp dir must not turn a drop
        // (possibly during a panic unwind) into an abort.
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: u64) -> Record {
        Record::keyed(k)
    }

    #[test]
    fn alloc_read_write_roundtrip_through_the_file() {
        let mut s = FileStore::new(4).unwrap();
        let id = s.alloc(&[rec(1), rec(2)]);
        let mut buf = Vec::new();
        s.read_into(id, &mut buf).unwrap();
        assert_eq!(buf, vec![rec(1), rec(2)]);
        s.write(id, &[Record::new(9, 7)]).unwrap();
        s.read_into(id, &mut buf).unwrap();
        assert_eq!(buf, vec![Record::new(9, 7)]);
        assert_eq!(s.block_size(), 4);
        assert!(s.path().exists());
    }

    #[test]
    fn release_recycles_slots_lifo_like_memstore() {
        let mut s = FileStore::new(2).unwrap();
        let a = s.alloc(&[rec(1)]);
        let b = s.alloc(&[rec(2)]);
        let c = s.alloc(&[rec(3)]);
        s.release(a).unwrap();
        s.release(c).unwrap();
        assert_eq!(s.live_blocks(), 1);
        // LIFO: the most recently released slot (c) is handed out first.
        assert_eq!(s.alloc(&[rec(4)]).index(), c.index());
        assert_eq!(s.alloc(&[rec(5)]).index(), a.index());
        assert_eq!(s.slots(), 3);
        let mut buf = Vec::new();
        s.read_into(b, &mut buf).unwrap();
        assert_eq!(buf, vec![rec(2)]);
    }

    #[test]
    fn stale_and_unknown_ids_error() {
        let mut s = FileStore::new(2).unwrap();
        let a = s.alloc(&[rec(1)]);
        s.release(a).unwrap();
        let mut buf = Vec::new();
        assert!(s.read_into(a, &mut buf).is_err());
        assert!(s.write(a, &[]).is_err());
        assert!(s.release(a).is_err());
        assert!(s.read_into(BlockId(99), &mut buf).is_err());
    }

    #[test]
    fn partial_blocks_mask_stale_file_bytes() {
        let mut s = FileStore::new(4).unwrap();
        let id = s.alloc(&[rec(1), rec(2), rec(3)]);
        s.write(id, &[rec(8)]).unwrap();
        let mut buf = Vec::new();
        s.read_into(id, &mut buf).unwrap();
        assert_eq!(buf, vec![rec(8)], "shrunk block must hide old records");
        s.write(id, &[rec(4), rec(5), rec(6), rec(7)]).unwrap();
        s.read_into(id, &mut buf).unwrap();
        assert_eq!(buf, vec![rec(4), rec(5), rec(6), rec(7)]);
    }

    #[test]
    fn drop_removes_the_backing_file() {
        let s = FileStore::new(2).unwrap();
        let path = s.path().to_path_buf();
        assert!(path.exists());
        drop(s);
        assert!(!path.exists(), "temp file must be deleted on drop");
    }

    #[test]
    fn unwritable_dir_errors_cleanly_instead_of_panicking() {
        let missing = std::env::temp_dir().join("asym-no-such-dir-xyzzy");
        let err = FileStore::new_in(&missing, 4).unwrap_err();
        assert!(matches!(err, ModelError::Io(_)), "got {err:?}");
    }

    #[test]
    #[should_panic(expected = "exceeds B")]
    fn overfull_block_rejected_on_alloc() {
        let mut s = FileStore::new(2).unwrap();
        s.alloc(&[rec(1), rec(2), rec(3)]);
    }
}

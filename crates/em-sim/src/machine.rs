//! The AEM machine: a pluggable block store + primary-memory enforcement +
//! cost accounting.

use crate::disk::MemStore;
use crate::file::FileStore;
use crate::store::{Backend, BlockId, BlockStore};
use asym_model::{CostModel, CostReport, ModelError, Record, Result};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Parameters of an AEM machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmConfig {
    /// Primary memory size, in records.
    pub m: usize,
    /// Block size, in records.
    pub b: usize,
    /// Cost of a block write relative to a block read.
    pub omega: u64,
    /// Extra primary-memory allowance above `m`, in records.
    ///
    /// The paper's algorithms state footprints like `M + 2B + 2αkM/B`
    /// (mergesort, Lemma 4.1) or `M + B + M/B` (sample sort, Theorem 4.5).
    /// Experiments set `slack` to the paper's allowance so the capacity check
    /// verifies the stated footprint, not just "some memory bound".
    pub slack: usize,
}

impl EmConfig {
    /// A machine with `m`-record memory, `b`-record blocks, write cost `omega`
    /// and no slack.
    pub fn new(m: usize, b: usize, omega: u64) -> Self {
        assert!(b >= 1, "B must be at least 1");
        assert!(m >= b, "M must hold at least one block");
        assert!(omega >= 1, "omega must be at least 1");
        Self {
            m,
            b,
            omega,
            slack: 0,
        }
    }

    /// Same machine with an explicit extra allowance.
    pub fn with_slack(mut self, slack: usize) -> Self {
        self.slack = slack;
        self
    }

    /// Total records the machine will allow in primary memory.
    pub fn capacity(&self) -> usize {
        self.m + self.slack
    }

    /// The asymmetric cost model for this machine.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.omega)
    }
}

/// Transfer statistics of one machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EmStats {
    /// Block reads (secondary → primary), unit cost each.
    pub block_reads: u64,
    /// Block writes (primary → secondary), cost ω each.
    pub block_writes: u64,
    /// Peak primary-memory lease, in records.
    pub peak_memory: usize,
}

impl EmStats {
    /// Render as a [`CostReport`] under the machine's ω.
    pub fn report(&self, omega: u64) -> CostReport {
        CostReport::new(self.block_reads, self.block_writes, omega)
    }

    /// Merge another lane's stats into a *work* aggregate: transfer counts
    /// add (total reads and writes across lanes — the quantity the paper's
    /// work bounds constrain), and `peak_memory` adds too, since each lane
    /// owns a separate primary memory and the aggregate is the machine-wide
    /// footprint if every lane peaked simultaneously (an upper bound).
    ///
    /// Span is *not* a fold over `EmStats` — the critical path depends on
    /// which transfers happen in sequence, which is what `wd_sim::Cost`
    /// tracks per phase.
    #[must_use]
    pub fn merge(self, other: EmStats) -> EmStats {
        EmStats {
            block_reads: self.block_reads + other.block_reads,
            block_writes: self.block_writes + other.block_writes,
            peak_memory: self.peak_memory + other.peak_memory,
        }
    }

    /// Merge many lanes' stats (see [`EmStats::merge`]).
    pub fn merge_all(stats: impl IntoIterator<Item = EmStats>) -> EmStats {
        stats.into_iter().fold(EmStats::default(), EmStats::merge)
    }
}

/// The Asymmetric External Memory machine.
///
/// Shared by handle (`clone` is cheap): the machine, the arrays living on its
/// secondary memory, and the algorithm all reference the same state.
/// Single-threaded by design — the AEM is a sequential model (the parallel
/// variant lives in `asym-core::par` on top of per-thread machines).
///
/// Secondary memory is a pluggable [`BlockStore`]: the zero-alloc in-memory
/// slab ([`MemStore`], the default) or a real temp file ([`FileStore`],
/// selected with [`EmMachine::with_backend`]). Cost accounting happens in
/// the machine *before* the store is touched, so modeled `EmStats` are
/// identical across backends by construction — the backend only changes how
/// long the same transfer schedule takes on real hardware.
///
/// Transfers move records between caller-owned buffers and the store, so the
/// modeled I/O path performs no heap allocation on the in-memory backend:
/// reads fill a reused buffer in place, writes copy out of a borrowed slice.
///
/// ```
/// use em_sim::{EmConfig, EmMachine};
/// use asym_model::Record;
/// let em = EmMachine::new(EmConfig::new(64, 8, 16)); // M=64, B=8, omega=16
/// let id = em.append_block_from(&[Record::keyed(1)]); // one block write
/// let mut buf = Vec::new();
/// em.read_block_into(id, &mut buf).unwrap();          // one block read
/// assert_eq!(em.io_cost(), 1 + 16);
/// ```
#[derive(Clone)]
pub struct EmMachine {
    inner: Rc<MachineInner>,
}

struct MachineInner {
    cfg: EmConfig,
    backend: Backend,
    disk: RefCell<Box<dyn BlockStore>>,
    block_reads: Cell<u64>,
    block_writes: Cell<u64>,
    mem_used: Cell<usize>,
    mem_peak: Cell<usize>,
}

impl EmMachine {
    /// Build a machine from a configuration, on the default in-memory store.
    pub fn new(cfg: EmConfig) -> Self {
        Self::from_parts(cfg, Backend::Mem, Box::new(MemStore::new(cfg.b)))
    }

    /// Build a machine on the given [`Backend`]. The file backend can fail
    /// (temp dir unwritable); the in-memory backend cannot.
    pub fn with_backend(cfg: EmConfig, backend: Backend) -> Result<Self> {
        let store: Box<dyn BlockStore> = match backend {
            Backend::Mem => Box::new(MemStore::new(cfg.b)),
            Backend::File => Box::new(FileStore::new(cfg.b)?),
            Backend::Custom => {
                return Err(ModelError::Invariant(
                    "custom stores are built with EmMachine::with_store, not by name".into(),
                ))
            }
        };
        Ok(Self::from_parts(cfg, backend, store))
    }

    /// Build a machine on a caller-supplied [`BlockStore`] implementation
    /// (reported as [`Backend::Custom`]). This is the extension point for
    /// out-of-tree backends — and for fault-injection wrappers in tests,
    /// which interpose on a real store to exercise the error paths.
    pub fn with_store(cfg: EmConfig, store: Box<dyn BlockStore>) -> Self {
        Self::from_parts(cfg, Backend::Custom, store)
    }

    fn from_parts(cfg: EmConfig, backend: Backend, store: Box<dyn BlockStore>) -> Self {
        assert_eq!(
            store.block_size(),
            cfg.b,
            "store block size must match the machine's B"
        );
        Self {
            inner: Rc::new(MachineInner {
                cfg,
                backend,
                disk: RefCell::new(store),
                block_reads: Cell::new(0),
                block_writes: Cell::new(0),
                mem_used: Cell::new(0),
                mem_peak: Cell::new(0),
            }),
        }
    }

    /// This machine's configuration.
    pub fn cfg(&self) -> EmConfig {
        self.inner.cfg
    }

    /// Which [`Backend`] this machine's secondary memory runs on.
    pub fn backend(&self) -> Backend {
        self.inner.backend
    }

    /// Block size `B` in records.
    pub fn b(&self) -> usize {
        self.inner.cfg.b
    }

    /// Primary memory size `M` in records.
    pub fn m(&self) -> usize {
        self.inner.cfg.m
    }

    /// Write cost ω.
    pub fn omega(&self) -> u64 {
        self.inner.cfg.omega
    }

    // ---- transfers -------------------------------------------------------

    /// Transfer a block from secondary to primary memory (cost 1), filling
    /// `buf` in place (cleared first). Callers keep one buffer per cursor, so
    /// the steady-state read path performs zero heap allocations.
    ///
    /// The caller must already hold a lease covering the destination buffer;
    /// the machine does not tie leases to specific blocks (the model's primary
    /// memory is a scratchpad), it only enforces the total.
    pub fn read_block_into(&self, id: BlockId, buf: &mut Vec<Record>) -> Result<()> {
        self.inner.block_reads.set(self.inner.block_reads.get() + 1);
        self.inner.disk.borrow_mut().read_into(id, buf)
    }

    /// Transfer a block from primary to secondary memory, overwriting `id`
    /// (cost ω — counted as one block write). The source buffer is borrowed,
    /// not consumed — the caller clears and refills it.
    pub fn write_block_from(&self, id: BlockId, records: &[Record]) -> Result<()> {
        self.inner
            .block_writes
            .set(self.inner.block_writes.get() + 1);
        self.inner.disk.borrow_mut().write(id, records)
    }

    /// Allocate a fresh block on disk and copy `records` into it (cost ω).
    pub fn append_block_from(&self, records: &[Record]) -> BlockId {
        self.inner
            .block_writes
            .set(self.inner.block_writes.get() + 1);
        self.inner.disk.borrow_mut().alloc(records)
    }

    /// Release a disk block (free; deallocation moves no data).
    pub fn release_block(&self, id: BlockId) -> Result<()> {
        self.inner.disk.borrow_mut().release(id)
    }

    /// Uncharged copy of a block's records (test oracles only). Allocates a
    /// fresh vector per call — fine for oracles; modeled transfers go through
    /// [`EmMachine::read_block_into`]. Returns `None` for released or unknown
    /// blocks; a real device failure on the file backend panics rather than
    /// masquerading as a freed block.
    pub fn peek_block(&self, id: BlockId) -> Option<Vec<Record>> {
        let mut out = Vec::new();
        match self.peek_block_into(id, &mut out) {
            Ok(()) => Some(out),
            Err(ModelError::BadBlock(_)) => None,
            Err(e) => panic!("peek_block({}): {e}", id.index()),
        }
    }

    /// Uncharged read of a block into a caller-reused buffer (test oracles
    /// and bulk uncharged copies like `EmVec::read_all_uncharged`).
    pub fn peek_block_into(&self, id: BlockId, buf: &mut Vec<Record>) -> Result<()> {
        self.inner.disk.borrow_mut().peek_into(id, buf)
    }

    /// Charge `n` block reads for transfers that are modeled but not
    /// materialized as disk blocks (e.g. a buffer-tree node's routing table,
    /// which lives in host structures but occupies ⌈c/B⌉ blocks in the model).
    pub fn charge_reads(&self, n: u64) {
        self.inner.block_reads.set(self.inner.block_reads.get() + n);
    }

    /// Charge `n` block writes for modeled-but-not-materialized transfers.
    pub fn charge_writes(&self, n: u64) {
        self.inner
            .block_writes
            .set(self.inner.block_writes.get() + n);
    }

    /// Number of live blocks on disk.
    pub fn live_blocks(&self) -> usize {
        self.inner.disk.borrow().live_blocks()
    }

    // ---- primary-memory accounting ----------------------------------------

    /// Lease `records` of primary memory for the lifetime of the returned
    /// guard. Fails if the lease would exceed `M + slack`.
    pub fn lease(&self, records: usize) -> Result<MemLease> {
        let used = self.inner.mem_used.get();
        let cap = self.inner.cfg.capacity();
        if used + records > cap {
            return Err(ModelError::MemoryExceeded {
                used,
                requested: records,
                capacity: cap,
            });
        }
        self.inner.mem_used.set(used + records);
        self.inner
            .mem_peak
            .set(self.inner.mem_peak.get().max(used + records));
        Ok(MemLease {
            machine: self.clone(),
            records,
        })
    }

    /// Records currently leased.
    pub fn mem_used(&self) -> usize {
        self.inner.mem_used.get()
    }

    // ---- statistics --------------------------------------------------------

    /// Current transfer statistics.
    pub fn stats(&self) -> EmStats {
        EmStats {
            block_reads: self.inner.block_reads.get(),
            block_writes: self.inner.block_writes.get(),
            peak_memory: self.inner.mem_peak.get(),
        }
    }

    /// Cost report under this machine's ω.
    pub fn report(&self) -> CostReport {
        self.stats().report(self.omega())
    }

    /// Reset transfer counters and the peak-memory tracker (disk contents and
    /// current leases are kept).
    pub fn reset_stats(&self) {
        self.inner.block_reads.set(0);
        self.inner.block_writes.set(0);
        self.inner.mem_peak.set(self.inner.mem_used.get());
    }

    /// Convenience: total asymmetric I/O cost so far.
    pub fn io_cost(&self) -> u64 {
        let s = self.stats();
        s.block_reads + self.omega() * s.block_writes
    }

    /// Stage a whole record slice as a block-aligned disk array, uncharged.
    /// Returns the block ids in order. Used to set up problem inputs. Each
    /// chunk is copied **once**, straight into the arena.
    pub fn stage_input(&self, records: &[Record]) -> Vec<BlockId> {
        let mut disk = self.inner.disk.borrow_mut();
        records.chunks(self.b()).map(|c| disk.alloc(c)).collect()
    }
}

/// RAII lease of primary-memory capacity (see [`EmMachine::lease`]).
pub struct MemLease {
    machine: EmMachine,
    records: usize,
}

impl MemLease {
    /// The number of records this lease covers.
    pub fn records(&self) -> usize {
        self.records
    }
}

impl Drop for MemLease {
    fn drop(&mut self) {
        let used = self.machine.inner.mem_used.get();
        debug_assert!(used >= self.records, "lease accounting underflow");
        self.machine.inner.mem_used.set(used - self.records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(m: usize, b: usize, omega: u64) -> EmMachine {
        EmMachine::new(EmConfig::new(m, b, omega))
    }

    fn recs(keys: &[u64]) -> Vec<Record> {
        keys.iter().map(|&k| Record::keyed(k)).collect()
    }

    #[test]
    fn transfers_are_charged_asymmetrically() {
        let em = machine(16, 4, 8);
        let id = em.append_block_from(&recs(&[1, 2]));
        let mut buf = Vec::new();
        em.read_block_into(id, &mut buf).unwrap();
        assert_eq!(buf, recs(&[1, 2]));
        em.write_block_from(id, &recs(&[3])).unwrap();
        let s = em.stats();
        assert_eq!(s.block_reads, 1);
        assert_eq!(s.block_writes, 2); // append + write
        assert_eq!(em.io_cost(), 1 + 8 * 2);
        assert_eq!(em.report().total(), 17);
    }

    #[test]
    fn staging_input_is_uncharged() {
        let em = machine(16, 4, 8);
        let ids = em.stage_input(&recs(&[1, 2, 3, 4, 5]));
        assert_eq!(ids.len(), 2); // 4 + 1 records
        assert_eq!(em.stats().block_reads, 0);
        assert_eq!(em.stats().block_writes, 0);
        assert_eq!(&*em.peek_block(ids[1]).unwrap(), recs(&[5]).as_slice());
    }

    #[test]
    fn lease_enforces_capacity() {
        let em = machine(10, 2, 4);
        let a = em.lease(6).unwrap();
        let b = em.lease(4).unwrap();
        assert_eq!(em.mem_used(), 10);
        assert!(em.lease(1).is_err());
        drop(a);
        assert_eq!(em.mem_used(), 4);
        let c = em.lease(5).unwrap();
        assert_eq!(c.records() + b.records(), 9);
        assert_eq!(em.stats().peak_memory, 10);
    }

    #[test]
    fn slack_extends_capacity() {
        let em = EmMachine::new(EmConfig::new(8, 2, 2).with_slack(4));
        assert_eq!(em.cfg().capacity(), 12);
        let _l = em.lease(12).unwrap();
        assert!(em.lease(1).is_err());
    }

    #[test]
    fn reset_stats_keeps_disk_and_leases() {
        let em = machine(8, 2, 2);
        let _l = em.lease(3).unwrap();
        let id = em.append_block_from(&recs(&[1]));
        em.reset_stats();
        let s = em.stats();
        assert_eq!((s.block_reads, s.block_writes), (0, 0));
        assert_eq!(s.peak_memory, 3);
        assert_eq!(em.mem_used(), 3);
        let mut buf = Vec::new();
        assert!(em.read_block_into(id, &mut buf).is_ok());
    }

    #[test]
    fn release_frees_disk_blocks() {
        let em = machine(8, 2, 2);
        let id = em.append_block_from(&recs(&[1]));
        assert_eq!(em.live_blocks(), 1);
        em.release_block(id).unwrap();
        assert_eq!(em.live_blocks(), 0);
        let mut buf = Vec::new();
        assert!(em.read_block_into(id, &mut buf).is_err());
    }

    #[test]
    fn cost_model_matches_omega() {
        let cfg = EmConfig::new(8, 2, 16);
        assert_eq!(cfg.cost_model().omega, 16);
        assert_eq!(cfg.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "M must hold")]
    fn m_smaller_than_b_rejected() {
        let _ = EmConfig::new(2, 4, 2);
    }

    #[test]
    fn file_backend_charges_identically_to_mem() {
        let cfg = EmConfig::new(16, 4, 8);
        let mem = EmMachine::new(cfg);
        let file = EmMachine::with_backend(cfg, Backend::File).expect("temp file");
        assert_eq!(mem.backend(), Backend::Mem);
        assert_eq!(file.backend(), Backend::File);
        for em in [&mem, &file] {
            let id = em.append_block_from(&recs(&[1, 2]));
            let mut buf = Vec::new();
            em.read_block_into(id, &mut buf).unwrap();
            assert_eq!(buf, recs(&[1, 2]));
            em.write_block_from(id, &recs(&[3])).unwrap();
            assert_eq!(em.peek_block(id).unwrap(), recs(&[3]));
            em.release_block(id).unwrap();
            assert!(em.peek_block(id).is_none());
        }
        assert_eq!(
            mem.stats(),
            file.stats(),
            "modeled costs must not depend on backend"
        );
        assert_eq!(mem.io_cost(), 1 + 8 * 2);
    }
}

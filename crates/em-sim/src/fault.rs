//! Seedable fault injection for [`BlockStore`]s.
//!
//! [`FaultStore`] interposes on any inner store and misbehaves on demand,
//! in two ways that compose:
//!
//! * **deterministic** — a shared [`FaultPlan`] arms an exact number of
//!   upcoming reads/writes to fail with `Interrupted`, optionally after a
//!   skip count, so a test can land a fault in a specific phase of an
//!   algorithm;
//! * **probabilistic** — a [`FaultSpec`] gives per-operation fault rates
//!   (in permille) driven by a private xorshift stream, so a chaos harness
//!   can storm a whole service reproducibly from one seed.
//!
//! Injected faults come in three flavors: a clean transient
//! (`ErrorKind::Interrupted` stringified into [`ModelError::Io`]), a
//! *short* transfer (the device hands back — or persists — a truncated
//! block before erroring), and a simulated crash (`panic!`), the flavor
//! that exercises `catch_unwind` isolation in callers. Slot bookkeeping
//! stays in the wrapped store, and the machine charges modeled costs
//! *before* touching the store, so fault injection never perturbs modeled
//! costs — a run that happens to dodge every fault is bit-identical to a
//! run on the bare store.
//!
//! Faults fire on the *charged* transfer paths: `read_into`, `write`, and
//! — crucially — `alloc`, because every sort write in this workspace goes
//! through `append_block_from`, which charges the modeled write and then
//! allocates. `alloc` has no `Result` channel, so its injected faults
//! unwind as [`StoreIoPanic`], a typed payload a `catch_unwind` caller can
//! downcast to tell a retryable device fault from a genuine bug. Release
//! and (uncharged) peeks stay fault-free: the model charges transfers, so
//! transfers are where faults teach us anything.

use crate::store::{BlockId, BlockStore};
use asym_model::{ModelError, Record, Result};
use std::cell::Cell;
use std::rc::Rc;

/// SplitMix64 — the seed scrambler behind [`FaultSpec::for_attempt`] and
/// [`FaultSpec::salted`].
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A clean transient: the same error a real `EINTR` would stringify to.
fn interrupted() -> ModelError {
    ModelError::Io(std::io::Error::from(std::io::ErrorKind::Interrupted).to_string())
}

/// A short transfer: part of the block moved, then the device gave up.
fn short(op: &str) -> ModelError {
    ModelError::Io(format!(
        "injected fault: short {op} (unexpected end of block)"
    ))
}

/// The typed panic payload carrying an injected I/O fault up a call path
/// that has no `Result` channel — [`BlockStore::alloc`] (the sink of every
/// `append_block_from`) and the block-cursor fast paths that `.expect`
/// their reads. A supervisor that isolates an attempt with `catch_unwind`
/// downcasts the payload to this type to classify the failure as a
/// retryable device fault; any other payload is a genuine bug.
#[derive(Debug)]
pub struct StoreIoPanic(pub ModelError);

impl std::fmt::Display for StoreIoPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Probabilistic fault rates for a [`FaultStore`], all in permille
/// (0 = never, 1000 = every operation). Plain data: `Copy`, hashable, and
/// carried on the wire by `SortSpec`, so a chaos job can be submitted to a
/// remote service and reproduced from its seed alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Seed of the fault stream. Two stores built from equal specs inject
    /// identical fault schedules.
    pub seed: u64,
    /// Per-read fault probability.
    pub read_permille: u16,
    /// Per-write fault probability.
    pub write_permille: u16,
    /// Given a fault fires, the probability it is the *short* flavor (a
    /// truncated transfer reaches the device/buffer) rather than a clean
    /// `Interrupted`.
    pub short_permille: u16,
    /// Per-operation probability of a simulated crash (`panic!`) — the
    /// flavor that tests `catch_unwind` isolation, not error plumbing.
    pub panic_permille: u16,
}

impl FaultSpec {
    /// A spec with every rate zero: a well-behaved device whose fault
    /// stream is seeded but never consulted.
    pub fn new(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// Whether this spec can ever fire.
    pub fn is_noop(&self) -> bool {
        self.read_permille == 0 && self.write_permille == 0 && self.panic_permille == 0
    }

    /// The spec a retry should run under: `retry` is how many attempts
    /// already failed (0 = first attempt, identity). Each retry re-seeds
    /// the stream *and halves the rates* — the modeled analogue of a
    /// transient storm abating while exponential backoff waits it out.
    /// Because the rates are integers, they reach zero after at most 10
    /// halvings, so any retry budget beyond that is guaranteed to see a
    /// clean device — chaos tests terminate by construction, not by luck.
    pub fn for_attempt(&self, retry: u32) -> FaultSpec {
        if retry == 0 {
            return *self;
        }
        let decay = retry.min(15);
        FaultSpec {
            seed: splitmix(self.seed ^ u64::from(retry)),
            read_permille: self.read_permille >> decay,
            write_permille: self.write_permille >> decay,
            short_permille: self.short_permille,
            panic_permille: self.panic_permille >> decay,
        }
    }

    /// The same rates on an independent stream — used to give each lane of
    /// a parallel machine its own fault schedule.
    pub fn salted(&self, salt: u64) -> FaultSpec {
        FaultSpec {
            seed: splitmix(self.seed ^ salt.rotate_left(32)),
            ..*self
        }
    }
}

/// Counters of what a [`FaultStore`] actually injected (faults that fired,
/// not operations that merely rolled).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Reads that failed by injection.
    pub read_faults: u64,
    /// Writes that failed by injection.
    pub write_faults: u64,
    /// Of those, faults that used the short-transfer flavor.
    pub short_transfers: u64,
}

/// Deterministically armed faults, shared by handle: clone the plan, mount
/// the store, keep arming from the test. Armed faults fire before the
/// probabilistic stream is consulted (and consume no randomness), so a
/// deterministic test stays deterministic even on a seeded store.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Let this many reads through before the armed read faults fire.
    read_skip: Rc<Cell<u32>>,
    /// Fail this many upcoming reads with `Interrupted`, then recover.
    reads: Rc<Cell<u32>>,
    /// Fail this many upcoming writes with `Interrupted`, then recover.
    writes: Rc<Cell<u32>>,
}

impl FaultPlan {
    /// Arm `n` read faults, firing on the very next reads.
    pub fn arm_reads(&self, n: u32) {
        self.read_skip.set(0);
        self.reads.set(n);
    }

    /// Arm `n` read faults that fire only after `skip` successful reads —
    /// used to land a fault in a specific phase of an algorithm.
    pub fn arm_reads_after(&self, skip: u32, n: u32) {
        self.read_skip.set(skip);
        self.reads.set(n);
    }

    /// Arm `n` write faults.
    pub fn arm_writes(&self, n: u32) {
        self.writes.set(n);
    }

    /// Consume one armed read fault (respecting the skip), if any.
    fn take_read(&self) -> bool {
        let skip = self.read_skip.get();
        if skip > 0 && self.reads.get() > 0 {
            self.read_skip.set(skip - 1);
            return false;
        }
        Self::take(&self.reads)
    }

    fn take_write(&self) -> bool {
        Self::take(&self.writes)
    }

    fn take(cell: &Cell<u32>) -> bool {
        let left = cell.get();
        if left > 0 {
            cell.set(left - 1);
            true
        } else {
            false
        }
    }
}

/// A [`BlockStore`] that interposes on any inner store and injects faults
/// per a [`FaultPlan`] (deterministic) and a [`FaultSpec`] (seeded
/// probabilistic). See the [module docs](self) for the fault taxonomy.
pub struct FaultStore {
    inner: Box<dyn BlockStore>,
    spec: FaultSpec,
    rng: u64,
    plan: FaultPlan,
    counts: FaultCounts,
}

impl FaultStore {
    /// Wrap `inner`; `spec` drives the probabilistic stream (use
    /// [`FaultSpec::new`] for a store that only fires armed faults).
    pub fn new(inner: Box<dyn BlockStore>, spec: FaultSpec) -> FaultStore {
        let mut rng = splitmix(spec.seed);
        if rng == 0 {
            rng = 0x9E37_79B9_7F4A_7C15;
        }
        FaultStore {
            inner,
            spec,
            rng,
            plan: FaultPlan::default(),
            counts: FaultCounts::default(),
        }
    }

    /// A handle to the deterministic arming plan (clone freely; arming
    /// works after the store is mounted in a machine).
    pub fn plan(&self) -> FaultPlan {
        self.plan.clone()
    }

    /// What has been injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// One Bernoulli(permille/1000) draw. Zero rates consume no randomness,
    /// so mounting a no-op spec perturbs nothing.
    fn roll(&mut self, permille: u16) -> bool {
        if permille == 0 {
            return false;
        }
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x % 1000 < u64::from(permille)
    }

    fn maybe_panic(&mut self, op: &str) {
        if self.roll(self.spec.panic_permille) {
            panic!("injected fault: simulated crash during block {op}");
        }
    }
}

impl BlockStore for FaultStore {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn alloc(&mut self, records: &[Record]) -> BlockId {
        // The write path sorts actually exercise: `append_block_from`
        // charges the modeled write, then lands here. There is no `Result`
        // channel, so injected faults unwind as [`StoreIoPanic`].
        if self.plan.take_write() {
            self.counts.write_faults += 1;
            std::panic::panic_any(StoreIoPanic(interrupted()));
        }
        self.maybe_panic("alloc");
        if self.roll(self.spec.write_permille) {
            self.counts.write_faults += 1;
            if records.len() > 1 && self.roll(self.spec.short_permille) {
                // A torn append: half the block reaches the device before
                // the error surfaces. The leaked partial block is exactly
                // the garbage a crashed append leaves behind.
                self.counts.short_transfers += 1;
                let _ = self.inner.alloc(&records[..records.len() / 2]);
                std::panic::panic_any(StoreIoPanic(short("write")));
            }
            std::panic::panic_any(StoreIoPanic(interrupted()));
        }
        self.inner.alloc(records)
    }

    fn read_into(&mut self, id: BlockId, out: &mut Vec<Record>) -> Result<()> {
        if self.plan.take_read() {
            self.counts.read_faults += 1;
            return Err(interrupted());
        }
        self.maybe_panic("read");
        if self.roll(self.spec.read_permille) {
            self.counts.read_faults += 1;
            if self.roll(self.spec.short_permille) {
                // A genuine short read: the device fills part of the buffer
                // before giving up.
                self.counts.short_transfers += 1;
                let _ = self.inner.read_into(id, out);
                out.pop();
                return Err(short("read"));
            }
            return Err(interrupted());
        }
        self.inner.read_into(id, out)
    }

    fn write(&mut self, id: BlockId, records: &[Record]) -> Result<()> {
        if self.plan.take_write() {
            self.counts.write_faults += 1;
            return Err(interrupted());
        }
        self.maybe_panic("write");
        if self.roll(self.spec.write_permille) {
            self.counts.write_faults += 1;
            if records.len() > 1 && self.roll(self.spec.short_permille) {
                // A torn write: half the block reaches the device, then the
                // error surfaces. The caller sees a failed transfer; the
                // device sees the truncation.
                self.counts.short_transfers += 1;
                let _ = self.inner.write(id, &records[..records.len() / 2]);
                return Err(short("write"));
            }
            return Err(interrupted());
        }
        self.inner.write(id, records)
    }

    fn release(&mut self, id: BlockId) -> Result<()> {
        self.inner.release(id)
    }

    fn live_blocks(&self) -> usize {
        self.inner.live_blocks()
    }

    fn slots(&self) -> usize {
        self.inner.slots()
    }

    fn peek_into(&mut self, id: BlockId, out: &mut Vec<Record>) -> Result<()> {
        self.inner.peek_into(id, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemStore;

    fn recs(keys: &[u64]) -> Vec<Record> {
        keys.iter().map(|&k| Record::keyed(k)).collect()
    }

    /// Alloc under a storm: retry through injected [`StoreIoPanic`]s, the
    /// way a real supervisor would. Deterministic per seed — the retries
    /// consume randomness from the same stream on every run.
    fn alloc_retry(store: &mut FaultStore, records: &[Record]) -> BlockId {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        loop {
            match catch_unwind(AssertUnwindSafe(|| store.alloc(records))) {
                Ok(id) => return id,
                Err(payload) => {
                    payload
                        .downcast_ref::<StoreIoPanic>()
                        .expect("typed payload");
                }
            }
        }
    }

    fn stormy(seed: u64) -> FaultStore {
        FaultStore::new(
            Box::new(MemStore::new(4)),
            FaultSpec {
                seed,
                read_permille: 400,
                write_permille: 400,
                short_permille: 300,
                panic_permille: 0,
            },
        )
    }

    /// Drive a fixed schedule of operations, recording which ones faulted.
    fn fault_fingerprint(store: &mut FaultStore) -> Vec<bool> {
        let id = alloc_retry(store, &recs(&[1, 2, 3, 4]));
        let mut buf = Vec::new();
        (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    store.read_into(id, &mut buf).is_err()
                } else {
                    store.write(id, &recs(&[9, 9])).is_err()
                }
            })
            .collect()
    }

    #[test]
    fn same_seed_same_storm() {
        let a = fault_fingerprint(&mut stormy(0xC4A05));
        let b = fault_fingerprint(&mut stormy(0xC4A05));
        assert_eq!(a, b, "equal specs must inject identical schedules");
        assert!(a.iter().any(|&f| f), "a 40% storm over 64 ops fires");
        assert!(!a.iter().all(|&f| f), "and lets some ops through");
        let c = fault_fingerprint(&mut stormy(0xC4A06));
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn rates_decay_to_zero_within_the_retry_budget() {
        let f = FaultSpec {
            seed: 7,
            read_permille: 1000,
            write_permille: 1000,
            short_permille: 500,
            panic_permille: 1000,
        };
        assert_eq!(f.for_attempt(0), f, "first attempt is the spec verbatim");
        let once = f.for_attempt(1);
        assert_eq!(once.read_permille, 500);
        assert_ne!(once.seed, f.seed);
        let spent = f.for_attempt(10);
        assert!(spent.is_noop(), "even certain faults die within 10 retries");
        // A no-op spec injects nothing at all.
        let mut store = FaultStore::new(Box::new(MemStore::new(4)), spent);
        let fp = fault_fingerprint(&mut store);
        assert!(fp.iter().all(|&f| !f));
        assert_eq!(store.counts(), FaultCounts::default());
    }

    #[test]
    fn lane_salting_changes_the_stream_not_the_rates() {
        let f = FaultSpec {
            seed: 11,
            read_permille: 250,
            ..FaultSpec::new(11)
        };
        let lane = f.salted(3);
        assert_eq!(lane.read_permille, f.read_permille);
        assert_ne!(lane.seed, f.seed);
        assert_eq!(f.salted(3), lane, "salting is deterministic");
    }

    #[test]
    fn armed_faults_fire_before_the_seeded_stream() {
        // Probabilistic rates present, but the armed plan must fire first
        // and consume no randomness: two stores, one with an armed fault,
        // agree on every operation after the armed one clears.
        let mut plain = stormy(99);
        let mut armed = stormy(99);
        let plan = armed.plan();
        plan.arm_reads(1);
        let id_a = alloc_retry(&mut plain, &recs(&[1]));
        let id_b = alloc_retry(&mut armed, &recs(&[1]));
        let mut buf = Vec::new();
        assert!(
            armed.read_into(id_b, &mut buf).is_err(),
            "armed fault fires"
        );
        // From here on the two streams must agree exactly.
        for _ in 0..32 {
            assert_eq!(
                plain.read_into(id_a, &mut buf).is_err(),
                armed.read_into(id_b, &mut buf).is_err()
            );
        }
    }

    #[test]
    fn short_flavors_truncate_but_keep_bookkeeping() {
        let mut store = FaultStore::new(
            Box::new(MemStore::new(4)),
            FaultSpec {
                seed: 5,
                read_permille: 1000,
                write_permille: 0,
                short_permille: 1000,
                panic_permille: 0,
            },
        );
        let id = store.alloc(&recs(&[1, 2, 3, 4]));
        let mut buf = Vec::new();
        let err = store.read_into(id, &mut buf).unwrap_err();
        assert!(
            matches!(err, ModelError::Io(ref m) if m.contains("short read")),
            "{err:?}"
        );
        assert_eq!(buf.len(), 3, "a short read hands back a truncated block");
        assert_eq!(store.live_blocks(), 1, "slot table untouched");
        assert_eq!(store.counts().short_transfers, 1);
    }

    #[test]
    fn alloc_faults_unwind_with_a_typed_payload() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut store = FaultStore::new(
            Box::new(MemStore::new(4)),
            FaultSpec {
                seed: 9,
                write_permille: 1000,
                short_permille: 0,
                ..FaultSpec::new(9)
            },
        );
        let payload = catch_unwind(AssertUnwindSafe(|| store.alloc(&recs(&[1, 2]))))
            .expect_err("a certain write fault fires on alloc");
        let io = payload
            .downcast_ref::<StoreIoPanic>()
            .expect("typed payload");
        assert!(matches!(io.0, ModelError::Io(_)), "{io}");
        assert_eq!(store.counts().write_faults, 1);
        assert_eq!(store.live_blocks(), 0, "clean flavor persists nothing");

        // The short flavor leaks a torn half-block into the device — the
        // garbage a crashed append leaves behind.
        let mut store = FaultStore::new(
            Box::new(MemStore::new(4)),
            FaultSpec {
                seed: 9,
                write_permille: 1000,
                short_permille: 1000,
                ..FaultSpec::new(9)
            },
        );
        let payload = catch_unwind(AssertUnwindSafe(|| store.alloc(&recs(&[1, 2, 3, 4]))))
            .expect_err("a certain write fault fires on alloc");
        let io = payload
            .downcast_ref::<StoreIoPanic>()
            .expect("typed payload");
        assert!(
            matches!(io.0, ModelError::Io(ref m) if m.contains("short write")),
            "{io}"
        );
        assert_eq!(store.counts().short_transfers, 1);
        assert_eq!(store.live_blocks(), 1, "the torn half-block persists");
    }

    #[test]
    #[should_panic(expected = "injected fault: simulated crash")]
    fn panic_flavor_panics() {
        let mut store = FaultStore::new(
            Box::new(MemStore::new(4)),
            FaultSpec {
                seed: 1,
                panic_permille: 1000,
                ..FaultSpec::new(1)
            },
        );
        let id = store.alloc(&recs(&[1]));
        let mut buf = Vec::new();
        let _ = store.read_into(id, &mut buf);
    }
}

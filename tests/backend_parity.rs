//! Backend-parity suite: `MemStore` and `FileStore` must be observationally
//! identical through the whole algorithm stack.
//!
//! The machine counts costs *before* touching the store, so `EmStats`
//! equality is by construction — what these tests actually pin down is that
//! the file backend stores and returns the same bytes under the same slot
//! schedule. Every registered sorter (the unified `asym_core::sort`
//! registry: mergesort, sample sort, buffer-tree heapsort, and the parallel
//! sample sort) runs at smoke scale on both backends and must produce
//! byte-identical sorted output and identical `(reads, writes,
//! peak_memory)`. Slot-reuse semantics get a dedicated release-heavy check
//! (the sorts free their intermediate runs, so any LIFO/ordering divergence
//! between the backends' free lists would surface as different output).

use asym_core::sort::{sorters, Algorithm, SortSpec, Sorter};
use asym_model::record::assert_sorted_permutation;
use asym_model::workload::Workload;
use asym_model::Record;
use em_sim::{Backend, EmConfig, EmMachine, EmVec};

/// The per-algorithm smoke geometry (matching the legacy suite's E3/E5/E6
/// configurations, so the exercised schedules stay the frozen ones).
fn geometry(algorithm: Algorithm) -> (usize, usize, usize, usize) {
    // (m, b, n, lanes)
    match algorithm {
        Algorithm::Heapsort => (16, 2, 800, 1),
        Algorithm::ParSamplesort => (32, 4, 600, 4),
        _ => (32, 4, 600, 1),
    }
}

/// Run one sorter on one backend; return (sorted output, stats).
fn run_on(
    sorter: &dyn Sorter,
    backend: Backend,
    k: usize,
    input: &[Record],
) -> (Vec<Record>, em_sim::EmStats) {
    let (m, b, _, lanes) = geometry(sorter.kind());
    let spec = SortSpec::builder(sorter.kind(), m, b, 8)
        .k(k)
        .lanes(lanes)
        .seed(0xE5)
        .backend(backend)
        .build()
        .expect("valid spec");
    let outcome = sorter.run(&spec, input).expect("run");
    assert_sorted_permutation(input, &outcome.output);
    (outcome.output, outcome.stats)
}

#[test]
fn every_registered_sorter_is_backend_invariant() {
    for sorter in sorters() {
        let (_, _, n, _) = geometry(sorter.kind());
        let input = Workload::UniformRandom.generate(n, 0x60_1D);
        for k in [1usize, 2] {
            let (out_mem, stats_mem) = run_on(sorter.as_ref(), Backend::Mem, k, &input);
            let (out_file, stats_file) = run_on(sorter.as_ref(), Backend::File, k, &input);
            let label = format!("{} k={k}", sorter.name());
            assert_eq!(out_mem, out_file, "{label}: sorted output differs");
            assert_eq!(stats_mem, stats_file, "{label}: EmStats differ");
        }
    }
}

#[test]
fn adversarial_workloads_are_backend_invariant() {
    // Sorted / reversed / few-distinct inputs drive different merge and
    // bucket paths (and different release orders) than uniform-random.
    let mergesort = asym_core::sort::sorter_for(Algorithm::Mergesort);
    for wl in [Workload::Sorted, Workload::Reversed, Workload::FewDistinct] {
        let input = wl.generate(300, 0xBEEF);
        let (out_mem, stats_mem) = run_on(mergesort.as_ref(), Backend::Mem, 2, &input);
        let (out_file, stats_file) = run_on(mergesort.as_ref(), Backend::File, 2, &input);
        assert_eq!(out_mem, out_file, "{wl:?}: sorted output differs");
        assert_eq!(stats_mem, stats_file, "{wl:?}: EmStats differ");
    }
}

// The heapsort's drained priority queue retains empty structural blocks,
// so the registry adapter (which owns its machine) cannot assert a clean
// store for it. This check runs the legacy entry point on a visible
// machine instead: the *count* of residual blocks must be identical across
// backends — a FileStore alloc/release accounting bug that diverges
// without corrupting bytes or modeled stats would surface here.
#[test]
#[allow(deprecated)]
fn heapsort_residual_blocks_match_across_backends() {
    use asym_core::em::aem_heapsort;
    use asym_core::em::pq::pq_slack;
    let (m, b, k) = (16usize, 2usize, 2usize);
    let input = Workload::UniformRandom.generate(800, 0x60_1D);
    let residual: Vec<usize> = [Backend::Mem, Backend::File]
        .into_iter()
        .map(|backend| {
            let cfg = EmConfig::new(m, b, 8).with_slack(pq_slack(m, b, k));
            let em = EmMachine::with_backend(cfg, backend).expect("create backend");
            let v = EmVec::stage(&em, &input);
            let sorted = aem_heapsort(&em, v, k).expect("heapsort");
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
            sorted.free(&em);
            em.live_blocks()
        })
        .collect();
    assert_eq!(
        residual[0], residual[1],
        "live-block accounting differs across backends"
    );
}

// The job server runs file-backed jobs concurrently, each in its own
// `file_dir` — N simultaneous FileStores doing real `std::fs` I/O. Parity
// must survive that: every concurrent file-backed job must produce the
// same bytes and the same modeled `EmStats` as a serial in-memory run of
// the identical spec.
#[test]
fn concurrent_file_jobs_match_serial_mem_runs() {
    const JOBS: usize = 6;
    let base = std::env::temp_dir().join(format!("asym-parity-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    // Serial reference runs, one distinct workload per job slot.
    let inputs: Vec<Vec<Record>> = (0..JOBS)
        .map(|i| Workload::ALL[i % Workload::ALL.len()].generate(600, i as u64))
        .collect();
    let spec_on = |backend: Backend, dir: Option<std::path::PathBuf>| {
        let mut builder = SortSpec::builder(Algorithm::Samplesort, 32, 4, 8)
            .k(2)
            .seed(0xE5)
            .backend(backend);
        if let Some(dir) = dir {
            builder = builder.file_dir(dir);
        }
        builder.build().expect("valid spec")
    };
    let serial: Vec<_> = inputs
        .iter()
        .map(|input| asym_core::sort::run(&spec_on(Backend::Mem, None), input).expect("serial run"))
        .collect();
    // The same jobs, file-backed, all running at once in distinct dirs.
    let concurrent: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                let dir = base.join(format!("job-{i}"));
                let spec = {
                    std::fs::create_dir_all(&dir).expect("job dir");
                    spec_on(Backend::File, Some(dir))
                };
                s.spawn(move || asym_core::sort::run(&spec, input).expect("file run"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    for (i, (mem, file)) in serial.iter().zip(&concurrent).enumerate() {
        assert_eq!(mem.output, file.output, "job {i}: sorted output differs");
        assert_eq!(mem.stats, file.stats, "job {i}: EmStats differ");
        assert_sorted_permutation(&inputs[i], &file.output);
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn slot_reuse_schedule_matches_across_backends() {
    // Release-heavy cursor traffic: write runs, free them, write again. If
    // the file backend recycled slots in a different order than the slab
    // arena, block ids (and the final bytes) would diverge.
    let cfg = EmConfig::new(32, 4, 8).with_slack(64);
    let mem = EmMachine::with_backend(cfg, Backend::Mem).unwrap();
    let file = EmMachine::with_backend(cfg, Backend::File).unwrap();
    for em in [&mem, &file] {
        let a = EmVec::stage(em, &Workload::UniformRandom.generate(40, 1));
        let b = EmVec::stage(em, &Workload::UniformRandom.generate(24, 2));
        a.free(em);
        let c = EmVec::stage(em, &Workload::UniformRandom.generate(40, 3));
        b.free(em);
        let d = EmVec::stage(em, &Workload::UniformRandom.generate(16, 4));
        assert_eq!(em.live_blocks(), c.num_blocks() + d.num_blocks());
    }
    // Same allocation history => same slot arithmetic on both backends.
    assert_eq!(mem.live_blocks(), file.live_blocks());
}

//! Backend-parity suite: `MemStore` and `FileStore` must be observationally
//! identical through the whole algorithm stack.
//!
//! The machine counts costs *before* touching the store, so `EmStats`
//! equality is by construction — what these tests actually pin down is that
//! the file backend stores and returns the same bytes under the same slot
//! schedule: E3 (mergesort), E5 (sample sort) and E6 (buffer-tree heapsort)
//! at smoke scale must produce byte-identical sorted output, identical
//! `(reads, writes, peak_memory)`, and identical live-block accounting on
//! both backends. Slot-reuse semantics get a dedicated release-heavy check
//! (the sorts free their intermediate runs, so any LIFO/ordering divergence
//! between the backends' free lists would surface as different output).

use asym_core::em::mergesort::mergesort_slack;
use asym_core::em::pq::pq_slack;
use asym_core::em::samplesort::samplesort_slack;
use asym_core::em::{aem_heapsort, aem_mergesort, aem_samplesort};
use asym_model::record::assert_sorted_permutation;
use asym_model::workload::Workload;
use asym_model::Record;
use em_sim::{Backend, EmConfig, EmMachine, EmStats, EmVec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run one sort on one backend; return (sorted output, stats, live blocks).
fn run_on(
    backend: Backend,
    cfg: EmConfig,
    input: &[Record],
    sort: impl FnOnce(&EmMachine, EmVec) -> EmVec,
) -> (Vec<Record>, EmStats, usize) {
    let em = EmMachine::with_backend(cfg, backend).expect("create backend");
    assert_eq!(em.backend(), backend);
    let v = EmVec::stage(&em, input);
    em.reset_stats();
    let sorted = sort(&em, v);
    let out = sorted.read_all_uncharged(&em);
    assert_sorted_permutation(input, &out);
    (out, em.stats(), em.live_blocks())
}

/// Run on both backends and assert byte-identical outputs and identical
/// modeled stats.
fn assert_parity(
    label: &str,
    cfg: EmConfig,
    input: &[Record],
    sort: impl Fn(&EmMachine, EmVec) -> EmVec,
) {
    let (out_mem, stats_mem, live_mem) = run_on(Backend::Mem, cfg, input, &sort);
    let (out_file, stats_file, live_file) = run_on(Backend::File, cfg, input, &sort);
    assert_eq!(out_mem, out_file, "{label}: sorted output differs");
    assert_eq!(stats_mem, stats_file, "{label}: EmStats differ");
    assert_eq!(
        live_mem, live_file,
        "{label}: live-block accounting differs"
    );
}

#[test]
fn e3_mergesort_is_backend_invariant() {
    let (m, b) = (32usize, 4usize);
    let input = Workload::UniformRandom.generate(500, 0x60_1D);
    for k in [1usize, 2, 4] {
        let cfg = EmConfig::new(m, b, 8).with_slack(mergesort_slack(m, b, k));
        assert_parity(&format!("E3 k={k}"), cfg, &input, |em, v| {
            aem_mergesort(em, v, k).expect("mergesort")
        });
    }
}

#[test]
fn e5_samplesort_is_backend_invariant() {
    let (m, b) = (32usize, 4usize);
    let input = Workload::UniformRandom.generate(600, 0x60_1D);
    for k in [1usize, 2] {
        let cfg = EmConfig::new(m, b, 8).with_slack(samplesort_slack(m, b, k));
        assert_parity(&format!("E5 k={k}"), cfg, &input, |em, v| {
            // Same splitter rng on both backends: the schedule must match.
            let mut rng = StdRng::seed_from_u64(0xE5);
            aem_samplesort(em, v, k, &mut rng).expect("samplesort")
        });
    }
}

#[test]
fn e6_heapsort_is_backend_invariant() {
    let (m, b) = (16usize, 2usize);
    let input = Workload::UniformRandom.generate(800, 0x60_1D);
    for k in [1usize, 2] {
        let cfg = EmConfig::new(m, b, 8).with_slack(pq_slack(m, b, k));
        assert_parity(&format!("E6 k={k}"), cfg, &input, |em, v| {
            aem_heapsort(em, v, k).expect("heapsort")
        });
    }
}

#[test]
fn adversarial_workloads_are_backend_invariant() {
    // Sorted / reversed / few-distinct inputs drive different merge and
    // bucket paths (and different release orders) than uniform-random.
    let (m, b, k) = (32usize, 4usize, 2usize);
    for wl in [Workload::Sorted, Workload::Reversed, Workload::FewDistinct] {
        let input = wl.generate(300, 0xBEEF);
        let cfg = EmConfig::new(m, b, 8).with_slack(mergesort_slack(m, b, k));
        assert_parity(&format!("{wl:?}"), cfg, &input, |em, v| {
            aem_mergesort(em, v, k).expect("mergesort")
        });
    }
}

#[test]
fn slot_reuse_schedule_matches_across_backends() {
    // Release-heavy cursor traffic: write runs, free them, write again. If
    // the file backend recycled slots in a different order than the slab
    // arena, block ids (and the final bytes) would diverge.
    let cfg = EmConfig::new(32, 4, 8).with_slack(64);
    let mem = EmMachine::with_backend(cfg, Backend::Mem).unwrap();
    let file = EmMachine::with_backend(cfg, Backend::File).unwrap();
    for em in [&mem, &file] {
        let a = EmVec::stage(em, &Workload::UniformRandom.generate(40, 1));
        let b = EmVec::stage(em, &Workload::UniformRandom.generate(24, 2));
        a.free(em);
        let c = EmVec::stage(em, &Workload::UniformRandom.generate(40, 3));
        b.free(em);
        let d = EmVec::stage(em, &Workload::UniformRandom.generate(16, 4));
        assert_eq!(em.live_blocks(), c.num_blocks() + d.num_blocks());
    }
    // Same allocation history => same slot arithmetic on both backends.
    assert_eq!(mem.live_blocks(), file.live_blocks());
}

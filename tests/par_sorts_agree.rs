//! Differential battery for the modeled parallel AEM sample sort: every
//! lane count must produce byte-identical output to the RAM reference
//! sorts, and the lane-merged transfer totals must be identical across
//! lane counts (work preservation — the tentpole invariant of the parallel
//! execution spine).

use asym_core::par::{par_aem_sample_sort, par_samplesort_slack, ParSortRun};
use asym_core::ram::tree_sort::tree_sort;
use asym_model::workload::Workload;
use asym_model::Record;
use em_sim::{Backend, EmConfig, ParMachine};
use proptest::prelude::*;

/// The lane sweep: {1, 2, 4, 8}, capped by `ASYM_BENCH_THREADS` when set
/// (the CI thread matrix runs this battery at caps 1 and 4). Shared with
/// experiment E13 so the battery and the bench gate can never
/// desynchronize; lane count 1 — the serial reference schedule — is always
/// present.
use asym_bench::e13_par_sort::lane_counts;

fn machine(m: usize, b: usize, omega: u64, k: usize, lanes: usize) -> ParMachine {
    // Honor the CI backend matrix: the battery must hold on file-backed
    // lanes exactly as on the slab arena.
    ParMachine::with_backend(
        EmConfig::new(m, b, omega).with_slack(par_samplesort_slack(m, b, k)),
        lanes,
        Backend::from_env(),
    )
    .expect("build lanes")
}

/// Run the modeled sort on `lanes` lanes and return the run after checking
/// the stores come back clean.
fn run(input: &[Record], m: usize, b: usize, k: usize, lanes: usize, seed: u64) -> ParSortRun {
    let par = machine(m, b, 8, k, lanes);
    let run = par_aem_sample_sort(&par, input, k, seed).expect("modeled par sort");
    assert_eq!(par.live_blocks(), 0, "run must release every block");
    run
}

/// The full differential check for one input: outputs equal the RAM
/// reference for every lane count; merged reads and writes equal the
/// one-lane serial schedule's for every lane count.
fn check_all_lane_counts(name: &str, input: &[Record], m: usize, b: usize, k: usize) {
    let mut expect = input.to_vec();
    expect.sort();
    // The RAM tree sort is the in-repo reference, but it requires unique
    // records; truly identical records fall back to the std sort alone.
    if expect.windows(2).all(|w| w[0] != w[1]) {
        assert_eq!(tree_sort(input), expect, "{name}: RAM reference disagrees");
    }
    let serial = run(input, m, b, k, 1, 0xD1FF);
    assert_eq!(serial.output, expect, "{name}: serial schedule wrong");
    for lanes in lane_counts().into_iter().skip(1) {
        let parallel = run(input, m, b, k, lanes, 0xD1FF);
        assert_eq!(
            parallel.output, expect,
            "{name}: output differs on {lanes} lanes"
        );
        assert_eq!(
            parallel.merged.block_writes, serial.merged.block_writes,
            "{name}: write total not preserved on {lanes} lanes"
        );
        assert_eq!(
            parallel.merged.block_reads, serial.merged.block_reads,
            "{name}: read total not preserved on {lanes} lanes"
        );
    }
}

#[test]
fn adversarial_inputs_agree_across_lane_counts() {
    let (m, b, k) = (32usize, 4usize, 2usize);
    let n = 3000usize;
    let cases: Vec<(&str, Vec<Record>)> = vec![
        ("sorted", Workload::Sorted.generate(n, 1)),
        ("reversed", Workload::Reversed.generate(n, 2)),
        ("zipf", Workload::Zipf.generate(n, 3)),
        ("organ-pipe", Workload::OrganPipe.generate(n, 4)),
        (
            // All records share one key; payloads keep the pairs unique
            // (the repo-wide record convention).
            "all-duplicate-keys",
            (0..n as u64).map(|i| Record::new(42, i)).collect(),
        ),
        (
            // Truly identical records: exercises the degenerate-skew
            // stream-copy path (one all-equal bucket).
            "all-identical",
            vec![Record::new(7, 7); n],
        ),
    ];
    for (name, input) in &cases {
        check_all_lane_counts(name, input, m, b, k);
    }
}

#[test]
fn block_boundary_lengths_agree_across_lane_counts() {
    let (m, b, k) = (32usize, 4usize, 1usize);
    for n in [0usize, 1, b - 1, b, b + 1, 2 * b + 1, m, m + 1] {
        let input = Workload::UniformRandom.generate(n, n as u64 + 9);
        check_all_lane_counts(&format!("boundary-n{n}"), &input, m, b, k);
    }
}

#[test]
fn mem_and_file_lanes_agree_exactly() {
    let (m, b, k) = (32usize, 4usize, 2usize);
    let input = Workload::UniformRandom.generate(1500, 77);
    let lanes = *lane_counts().last().expect("non-empty sweep");
    let cfg = EmConfig::new(m, b, 8).with_slack(par_samplesort_slack(m, b, k));
    let mem = ParMachine::with_backend(cfg, lanes, Backend::Mem).expect("mem lanes");
    let file = ParMachine::with_backend(cfg, lanes, Backend::File).expect("file lanes");
    let mem_run = par_aem_sample_sort(&mem, &input, k, 5).expect("mem");
    let file_run = par_aem_sample_sort(&file, &input, k, 5).expect("file");
    assert_eq!(mem_run.output, file_run.output);
    assert_eq!(
        mem_run.lane_stats, file_run.lane_stats,
        "modeled per-lane costs must not depend on the backend"
    );
    assert_eq!(file.live_blocks(), 0);
}

#[test]
fn span_never_exceeds_serial_and_work_is_conserved_in_cost_algebra() {
    let (m, b, k) = (64usize, 8usize, 2usize);
    let input = Workload::UniformRandom.generate(6000, 11);
    let serial = run(&input, m, b, k, 1, 3);
    for lanes in lane_counts().into_iter().skip(1) {
        let parallel = run(&input, m, b, k, lanes, 3);
        assert!(
            parallel.cost.depth <= serial.cost.depth,
            "{lanes} lanes: span {} beyond serial {}",
            parallel.cost.depth,
            serial.cost.depth
        );
        // The cost algebra's work components are exactly the machine
        // counters, merged.
        assert_eq!(parallel.cost.reads, parallel.merged.block_reads);
        assert_eq!(parallel.cost.writes, parallel.merged.block_writes);
        // The scheduler simulation executed exactly the modeled work.
        assert_eq!(parallel.sched.work, parallel.cost.work(8));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_inputs_agree_across_lane_counts(
        pairs in prop::collection::vec((0u64..64, 0u64..1000), 0..900),
        seed in 0u64..1000,
    ) {
        // Duplicate keys are frequent (64 distinct keys); payloads keep the
        // (key, payload) pairs unique per the repo-wide record convention.
        let mut input: Vec<Record> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(k, p))| Record::new(k, p * 1000 + i as u64))
            .collect();
        input.sort();
        input.dedup();
        let mut expect = input.clone();
        expect.sort();
        // Shuffle deterministically so the input isn't pre-sorted.
        let n = input.len().max(1);
        for i in 0..input.len() {
            let j = (seed as usize + 7 * i) % n;
            input.swap(i, j);
        }

        let serial = run(&input, 16, 4, 1, 1, seed);
        prop_assert_eq!(&serial.output, &expect);
        for lanes in lane_counts().into_iter().skip(1) {
            let parallel = run(&input, 16, 4, 1, lanes, seed);
            prop_assert_eq!(&parallel.output, &expect);
            prop_assert_eq!(
                parallel.merged.block_writes,
                serial.merged.block_writes,
                "lanes={}: writes not preserved",
                lanes
            );
            prop_assert_eq!(
                parallel.merged.block_reads,
                serial.merged.block_reads,
                "lanes={}: reads not preserved",
                lanes
            );
        }
    }
}

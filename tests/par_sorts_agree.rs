//! Differential battery for the modeled parallel AEM sample sort, driven
//! through the unified `asym_core::sort` API: every lane count must produce
//! byte-identical output to the RAM reference sorts, and the lane-merged
//! transfer totals must be identical across lane counts (work preservation
//! — the tentpole invariant of the parallel execution spine).

use asym_core::ram::tree_sort::tree_sort;
use asym_core::sort::{self, Algorithm, SortOutcome, SortSpec};
use asym_model::workload::Workload;
use asym_model::Record;
use em_sim::Backend;
use proptest::prelude::*;

/// The lane sweep: {1, 2, 4, 8}, capped by `ASYM_BENCH_THREADS` when set
/// (the CI thread matrix runs this battery at caps 1 and 4). Shared with
/// experiment E13 so the battery and the bench gate can never
/// desynchronize; lane count 1 — the serial reference schedule — is always
/// present.
use asym_bench::e13_par_sort::lane_counts;

/// The job description one battery cell runs (backend honors the CI
/// backend matrix via `from_env`: the battery must hold on file-backed
/// lanes exactly as on the slab arena).
fn spec(m: usize, b: usize, k: usize, lanes: usize, seed: u64) -> SortSpec {
    SortSpec::builder(Algorithm::ParSamplesort, m, b, 8)
        .k(k)
        .lanes(lanes)
        .seed(seed)
        .from_env()
        .expect("parse ASYM_BENCH_* environment")
        .build()
        .expect("valid spec")
}

/// Run the modeled sort on `lanes` lanes through the registry.
fn run(input: &[Record], m: usize, b: usize, k: usize, lanes: usize, seed: u64) -> SortOutcome {
    let outcome = sort::run(&spec(m, b, k, lanes, seed), input).expect("modeled par sort");
    assert!(
        outcome.parallel.is_some(),
        "parallel runs carry lane detail"
    );
    outcome
}

/// The full differential check for one input: outputs equal the RAM
/// reference for every lane count; merged reads and writes equal the
/// one-lane serial schedule's for every lane count.
fn check_all_lane_counts(name: &str, input: &[Record], m: usize, b: usize, k: usize) {
    let mut expect = input.to_vec();
    expect.sort();
    // The RAM tree sort is the in-repo reference, but it requires unique
    // records; truly identical records fall back to the std sort alone.
    if expect.windows(2).all(|w| w[0] != w[1]) {
        assert_eq!(tree_sort(input), expect, "{name}: RAM reference disagrees");
    }
    let serial = run(input, m, b, k, 1, 0xD1FF);
    assert_eq!(serial.output, expect, "{name}: serial schedule wrong");
    for lanes in lane_counts().into_iter().skip(1) {
        let parallel = run(input, m, b, k, lanes, 0xD1FF);
        assert_eq!(
            parallel.output, expect,
            "{name}: output differs on {lanes} lanes"
        );
        assert_eq!(
            parallel.stats.block_writes, serial.stats.block_writes,
            "{name}: write total not preserved on {lanes} lanes"
        );
        assert_eq!(
            parallel.stats.block_reads, serial.stats.block_reads,
            "{name}: read total not preserved on {lanes} lanes"
        );
    }
}

#[test]
fn adversarial_inputs_agree_across_lane_counts() {
    let (m, b, k) = (32usize, 4usize, 2usize);
    let n = 3000usize;
    let cases: Vec<(&str, Vec<Record>)> = vec![
        ("sorted", Workload::Sorted.generate(n, 1)),
        ("reversed", Workload::Reversed.generate(n, 2)),
        ("zipf", Workload::Zipf.generate(n, 3)),
        ("organ-pipe", Workload::OrganPipe.generate(n, 4)),
        (
            // All records share one key; payloads keep the pairs unique
            // (the repo-wide record convention).
            "all-duplicate-keys",
            (0..n as u64).map(|i| Record::new(42, i)).collect(),
        ),
        (
            // Truly identical records: one all-equal oversized bucket pushed
            // through the serial merge's provenance-keyed discipline.
            "all-identical",
            vec![Record::new(7, 7); n],
        ),
        (
            // ~90% duplicates: a handful of distinct records, each heavily
            // repeated, so every bucket boundary lands inside a twin run.
            "duplicate-heavy",
            Workload::DuplicateHeavy.generate(n, 6),
        ),
    ];
    for (name, input) in &cases {
        check_all_lane_counts(name, input, m, b, k);
    }
}

#[test]
fn block_boundary_lengths_agree_across_lane_counts() {
    let (m, b, k) = (32usize, 4usize, 1usize);
    for n in [0usize, 1, b - 1, b, b + 1, 2 * b + 1, m, m + 1] {
        let input = Workload::UniformRandom.generate(n, n as u64 + 9);
        check_all_lane_counts(&format!("boundary-n{n}"), &input, m, b, k);
    }
}

#[test]
fn mem_and_file_lanes_agree_exactly() {
    let (m, b, k) = (32usize, 4usize, 2usize);
    let input = Workload::UniformRandom.generate(1500, 77);
    let lanes = *lane_counts().last().expect("non-empty sweep");
    let run_on = |backend: Backend| {
        let spec = SortSpec::builder(Algorithm::ParSamplesort, m, b, 8)
            .k(k)
            .lanes(lanes)
            .seed(5)
            .backend(backend)
            .build()
            .expect("valid spec");
        sort::run(&spec, &input).expect("modeled par sort")
    };
    let mem_run = run_on(Backend::Mem);
    let file_run = run_on(Backend::File);
    assert_eq!(mem_run.output, file_run.output);
    assert_eq!(
        mem_run.parallel.as_ref().expect("lanes").lane_stats,
        file_run.parallel.as_ref().expect("lanes").lane_stats,
        "modeled per-lane costs must not depend on the backend"
    );
    assert_eq!(mem_run.stats, file_run.stats);
}

#[test]
fn span_never_exceeds_serial_and_work_is_conserved_in_cost_algebra() {
    let (m, b, k) = (64usize, 8usize, 2usize);
    let input = Workload::UniformRandom.generate(6000, 11);
    let serial = run(&input, m, b, k, 1, 3);
    let serial_par = serial.parallel.as_ref().expect("lane detail");
    for lanes in lane_counts().into_iter().skip(1) {
        let parallel = run(&input, m, b, k, lanes, 3);
        let par = parallel.parallel.as_ref().expect("lane detail");
        assert!(
            par.cost.depth <= serial_par.cost.depth,
            "{lanes} lanes: span {} beyond serial {}",
            par.cost.depth,
            serial_par.cost.depth
        );
        // The cost algebra's work components are exactly the machine
        // counters, merged.
        assert_eq!(par.cost.reads, parallel.stats.block_reads);
        assert_eq!(par.cost.writes, parallel.stats.block_writes);
        // The scheduler simulation executed exactly the modeled work.
        assert_eq!(par.sched.work, par.cost.work(8));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_inputs_agree_across_lane_counts(
        pairs in prop::collection::vec((0u64..64, 0u64..1000), 0..900),
        seed in 0u64..1000,
    ) {
        // Duplicate keys are frequent (64 distinct keys); payloads keep the
        // (key, payload) pairs unique per the repo-wide record convention.
        let mut input: Vec<Record> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(k, p))| Record::new(k, p * 1000 + i as u64))
            .collect();
        input.sort();
        input.dedup();
        let mut expect = input.clone();
        expect.sort();
        // Shuffle deterministically so the input isn't pre-sorted.
        let n = input.len().max(1);
        for i in 0..input.len() {
            let j = (seed as usize + 7 * i) % n;
            input.swap(i, j);
        }

        let serial = run(&input, 16, 4, 1, 1, seed);
        prop_assert_eq!(&serial.output, &expect);
        for lanes in lane_counts().into_iter().skip(1) {
            let parallel = run(&input, 16, 4, 1, lanes, seed);
            prop_assert_eq!(&parallel.output, &expect);
            prop_assert_eq!(
                parallel.stats.block_writes,
                serial.stats.block_writes,
                "lanes={}: writes not preserved",
                lanes
            );
            prop_assert_eq!(
                parallel.stats.block_reads,
                serial.stats.block_reads,
                "lanes={}: reads not preserved",
                lanes
            );
        }
    }
}

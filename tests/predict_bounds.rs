//! `SortSpec::predict` vs. reality: the pre-run estimates the job server
//! admits on must actually dominate what the sorters then do.
//!
//! The peak-memory prediction is the admission-control currency of
//! `asym-serve`, so it is pinned as a **hard bound** here: for every
//! registered sorter, across ω ∈ {1, 8, 32}, several `k` values, and three
//! workloads, `predict(n).peak_memory >= EmStats::peak_memory`. The
//! read/write envelopes are checked as upper bounds too — they are the same
//! theorem constants `tests/cost_bounds.rs` validates, re-expressed through
//! the spec API.

use asym_core::sort::{sorters, Algorithm, SortSpec};
use asym_model::workload::Workload;

const OMEGAS: [u64; 3] = [1, 8, 32];

fn spec_for(algorithm: Algorithm, m: usize, b: usize, omega: u64, k: usize) -> SortSpec {
    SortSpec::builder(algorithm, m, b, omega)
        .k(k)
        .lanes(if algorithm.is_parallel() { 4 } else { 1 })
        .seed(11)
        .build()
        .expect("valid spec")
}

#[test]
fn predicted_peak_memory_is_a_hard_bound_for_every_sorter_and_omega() {
    for sorter in sorters() {
        for omega in OMEGAS {
            for k in [1usize, 2, 4] {
                for (workload, n) in [
                    (Workload::UniformRandom, 2_000usize),
                    (Workload::NearlySorted, 700),
                    (Workload::FewDistinct, 300),
                ] {
                    let spec = spec_for(sorter.kind(), 64, 8, omega, k);
                    let est = spec.predict(n);
                    let input = workload.generate(n, 23);
                    let outcome = sorter.run(&spec, &input).expect("sort");
                    assert!(
                        est.peak_memory >= outcome.stats.peak_memory,
                        "{} omega={omega} k={k} {} n={n}: predicted peak {} < actual {}",
                        sorter.name(),
                        workload.name(),
                        est.peak_memory,
                        outcome.stats.peak_memory,
                    );
                    assert_eq!(est.omega, omega);
                }
            }
        }
    }
}

#[test]
fn predicted_transfer_envelopes_dominate_measured_counts() {
    for sorter in sorters() {
        for omega in OMEGAS {
            for k in [1usize, 2, 4] {
                let spec = spec_for(sorter.kind(), 64, 8, omega, k);
                let n = 4_000;
                let est = spec.predict(n);
                let input = Workload::UniformRandom.generate(n, 5);
                let outcome = sorter.run(&spec, &input).expect("sort");
                assert!(
                    est.reads >= outcome.stats.block_reads,
                    "{} omega={omega} k={k}: predicted reads {} < actual {}",
                    sorter.name(),
                    est.reads,
                    outcome.stats.block_reads,
                );
                assert!(
                    est.writes >= outcome.stats.block_writes,
                    "{} omega={omega} k={k}: predicted writes {} < actual {}",
                    sorter.name(),
                    est.writes,
                    outcome.stats.block_writes,
                );
                assert!(est.io_cost() >= outcome.io_cost());
            }
        }
    }
}

#[test]
fn prediction_is_deterministic_and_monotone_in_n() {
    for algorithm in Algorithm::ALL {
        let spec = spec_for(algorithm, 64, 8, 8, 2);
        let small = spec.predict(1_000);
        assert_eq!(small, spec.predict(1_000), "{algorithm}: must be pure");
        let big = spec.predict(100_000);
        assert!(
            big.io_cost() > small.io_cost(),
            "{algorithm}: more records must predict more I/O",
        );
        assert_eq!(
            small.peak_memory, big.peak_memory,
            "{algorithm}: peak is geometry-only"
        );
    }
}

//! Checkpoint/resume differential suite: for every registry sorter, a
//! staged run interrupted after *any* phase and resumed from its manifest
//! produces byte-identical output and bit-identical cumulative modeled
//! stats (`resume ⊕ prefix == uninterrupted`). This is the core
//! guarantee the serve-layer recovery path and the chaos harness's
//! "never redo paid writes" gate are built on.

use asym_core::sort::checkpoint::{
    input_digest, predict_staged, resume_from, run_staged, CheckpointManifest, MemCheckpointer,
    StagePlan,
};
use asym_core::sort::{run, sorters, Algorithm, SortSpec};
use asym_model::workload::Workload;

fn spec_for(algorithm: Algorithm) -> SortSpec {
    SortSpec::builder(algorithm, 32, 4, 8)
        .k(2)
        .lanes(if algorithm.is_parallel() { 4 } else { 1 })
        .seed(11)
        .build()
        .expect("valid spec")
}

/// Resuming from every manifest of a run reproduces the uninterrupted
/// run exactly: same output, same cumulative stats, and the manifests
/// the resume emits equal the suffix the prefix would have emitted.
#[test]
fn resume_after_every_phase_is_bit_identical() {
    let input = Workload::Zipf.generate(1_500, 0xC0FFEE);
    for sorter in sorters() {
        let spec = spec_for(sorter.kind());
        let mut full = MemCheckpointer::default();
        let uninterrupted = run_staged(&spec, &input, &mut full).expect("staged run");
        let plan = StagePlan::new(&spec, input.len());
        assert!(
            plan.total_phases() >= 3,
            "{}: want a multi-phase plan, got {} phases",
            sorter.name(),
            plan.total_phases()
        );
        assert_eq!(full.manifests.len(), plan.total_phases());

        for (cut, manifest) in full.manifests.iter().enumerate() {
            let mut tail = MemCheckpointer::default();
            let resumed = resume_from(&spec, &input, manifest, &mut tail).expect("resume");
            assert_eq!(
                resumed.output,
                uninterrupted.output,
                "{} cut after phase {}: output diverged",
                sorter.name(),
                cut + 1
            );
            assert_eq!(
                resumed.stats,
                uninterrupted.stats,
                "{} cut after phase {}: modeled stats diverged",
                sorter.name(),
                cut + 1
            );
            // The resume's manifest stream is exactly the suffix of the
            // uninterrupted stream — checkpointing is history-oblivious.
            assert_eq!(tail.manifests.as_slice(), &full.manifests[cut + 1..]);
        }
    }
}

/// Staged execution is just a different schedule of the same sort: its
/// output equals the single-shot `sort::run` path, and its modeled costs
/// stay inside the staged envelope that prices admission.
#[test]
fn staged_matches_single_shot_and_its_envelope() {
    let input = Workload::FewDistinct.generate(1_200, 0xFACE);
    for sorter in sorters() {
        let spec = spec_for(sorter.kind());
        let mut sink = MemCheckpointer::default();
        let staged = run_staged(&spec, &input, &mut sink).expect("staged run");
        let plain = run(&spec, &input).expect("single-shot run");
        assert_eq!(staged.output, plain.output, "{}", sorter.name());

        let est = predict_staged(&spec, input.len());
        assert!(
            staged.stats.block_reads <= est.reads
                && staged.stats.block_writes <= est.writes
                && staged.stats.peak_memory <= est.peak_memory,
            "{}: staged run escaped its envelope: {:?} vs {:?}",
            sorter.name(),
            staged.stats,
            est
        );
    }
}

/// A manifest only resumes the job it was cut from: a different input or
/// a different logical spec flips the digest and resume refuses.
#[test]
fn resume_refuses_foreign_manifests() {
    let spec = spec_for(Algorithm::Mergesort);
    let input = Workload::UniformRandom.generate(800, 21);
    let mut sink = MemCheckpointer::default();
    run_staged(&spec, &input, &mut sink).expect("staged run");
    let manifest = sink.manifests[2].clone();

    let other_input = Workload::UniformRandom.generate(800, 22);
    assert_ne!(
        input_digest(&spec, &input),
        input_digest(&spec, &other_input)
    );
    let mut tail = MemCheckpointer::default();
    assert!(resume_from(&spec, &other_input, &manifest, &mut tail).is_err());

    let other_spec = spec_for(Algorithm::Samplesort);
    assert!(manifest.validate(&other_spec, &input).is_err());
}

/// The manifest wire codec is lossless, so a resume through the audit
/// log (render → append → replay → parse) sees the exact snapshot the
/// executor saved.
#[test]
fn manifest_json_round_trip_preserves_resume() {
    let spec = spec_for(Algorithm::Heapsort);
    let input = Workload::NearlySorted.generate(1_000, 5);
    let mut sink = MemCheckpointer::default();
    let uninterrupted = run_staged(&spec, &input, &mut sink).expect("staged run");
    let mid = sink.manifests[sink.manifests.len() / 2].clone();
    let decoded = CheckpointManifest::from_json(&mid.to_json()).expect("round trip");
    assert_eq!(decoded, mid);
    let mut tail = MemCheckpointer::default();
    let resumed = resume_from(&spec, &input, &decoded, &mut tail).expect("resume");
    assert_eq!(resumed.output, uninterrupted.output);
    assert_eq!(resumed.stats, uninterrupted.stats);
}

/// Resuming from the final manifest runs zero phases — the outcome is
/// already in the manifest. Resume is idempotent at every cut.
#[test]
fn resume_from_complete_manifest_is_a_no_op() {
    let spec = spec_for(Algorithm::Mergesort);
    let input = Workload::Reversed.generate(600, 13);
    let mut sink = MemCheckpointer::default();
    let uninterrupted = run_staged(&spec, &input, &mut sink).expect("staged run");
    let last = sink.manifests.last().expect("manifests").clone();
    assert_eq!(last.phases_done, last.total_phases);
    let mut tail = MemCheckpointer::default();
    let resumed = resume_from(&spec, &input, &last, &mut tail).expect("resume");
    assert_eq!(resumed.output, uninterrupted.output);
    assert_eq!(resumed.stats, uninterrupted.stats);
    assert!(tail.manifests.is_empty(), "no phases left, no checkpoints");
}

//! `SortSpecBuilder::from_env` against the live process environment.
//!
//! This lives in its own test binary (one process, one test) because it
//! mutates `ASYM_BENCH_*` with `std::env::set_var`, which is unsound to
//! interleave with concurrent `getenv` readers on other threads — e.g.
//! `std::env::temp_dir()` inside the file-backend tests. Everything else
//! about env parsing is covered race-free by the pure `parse_backend` /
//! `parse_thread_cap` unit tests in `asym_core::sort::spec`.

use asym_core::sort::{Algorithm, SortSpec, SpecError, BACKEND_ENV, THREADS_ENV};
use em_sim::Backend;

#[test]
fn from_env_absorbs_backend_and_thread_cap() {
    let old_backend = std::env::var(BACKEND_ENV).ok();
    let old_threads = std::env::var(THREADS_ENV).ok();

    std::env::set_var(BACKEND_ENV, "file");
    std::env::set_var(THREADS_ENV, "2");
    let spec = SortSpec::builder(Algorithm::ParSamplesort, 32, 4, 8)
        .lanes(8)
        .from_env()
        .expect("valid env")
        .build()
        .expect("valid spec");
    assert_eq!(spec.backend(), Backend::File);
    assert_eq!(spec.lanes(), 2, "ASYM_BENCH_THREADS caps the lane count");

    std::env::set_var(BACKEND_ENV, "nvme");
    let err = SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
        .from_env()
        .unwrap_err();
    assert!(matches!(err, SpecError::Env { var, .. } if var == BACKEND_ENV));

    std::env::set_var(BACKEND_ENV, "mem");
    std::env::set_var(THREADS_ENV, "lots");
    let err = SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
        .from_env()
        .unwrap_err();
    assert!(matches!(err, SpecError::Env { var, .. } if var == THREADS_ENV));

    // Restore whatever the harness was invoked with.
    match old_backend {
        Some(v) => std::env::set_var(BACKEND_ENV, v),
        None => std::env::remove_var(BACKEND_ENV),
    }
    match old_threads {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
}

//! Lemma 2.1 and the cache simulator, exercised with real algorithm traces:
//! the read-write LRU policy stays within a constant factor of the offline
//! MIN bracket, and the policies agree on the underlying data.

use asym_core::co::{co_asym_sort, co_mergesort, fft, Cplx, FftVariant};
use asym_model::workload::Workload;
use cache_sim::{simulate_min, CacheConfig, MinVariant, PolicyChoice, SimArray, Tracker};

/// Record a block trace by running `f` against a recording tracker.
fn record_trace(cfg: CacheConfig, f: impl FnOnce(&Tracker)) -> Vec<(u32, bool)> {
    let t = Tracker::new(cfg, PolicyChoice::Record);
    f(&t);
    t.take_trace()
}

fn replay_rw_lru(cfg: CacheConfig, trace: &[(u32, bool)]) -> cache_sim::CacheStats {
    let t = Tracker::new(cfg, PolicyChoice::RwLru);
    // Feed the recorded block trace back through the policy: synthesize one
    // access per trace entry at the block's first cell.
    for &(blk, w) in trace {
        t.access(blk as usize * cfg.b, w);
    }
    t.flush();
    t.stats()
}

fn sort_trace(n: usize, omega: usize) -> Vec<(u32, bool)> {
    let cfg = CacheConfig::new(64, 8, omega as u64);
    record_trace(cfg, |t| {
        let input = Workload::UniformRandom.generate(n, 13);
        let mut a = SimArray::from_vec(t, input);
        co_asym_sort(&mut a, 0, n, omega, 64);
    })
}

fn mergesort_trace(n: usize) -> Vec<(u32, bool)> {
    let cfg = CacheConfig::new(64, 8, 4);
    record_trace(cfg, |t| {
        let input = Workload::Reversed.generate(n, 17);
        let mut a = SimArray::from_vec(t, input);
        co_mergesort(&mut a, 0, n);
    })
}

fn fft_trace(n: usize) -> Vec<(u32, bool)> {
    let cfg = CacheConfig::new(64, 8, 4);
    record_trace(cfg, |t| {
        let sig: Vec<Cplx> = (0..n).map(|i| Cplx::new(i as f64, 0.0)).collect();
        let mut a = SimArray::from_vec(t, sig);
        fft(&mut a, 0, n, FftVariant::Asymmetric, 4, 32);
    })
}

#[test]
fn lemma_2_1_rw_lru_competitive_with_min() {
    // QL(M_L = 2 M_I) vs the MIN bracket at M_I: Lemma 2.1 gives a factor
    // M_L/(M_L - M_I) = 2 plus an additive term; we allow 3x on cost since
    // MIN-classic is only a bracket for the asymmetric ideal.
    let omega = 8u64;
    let traces = [
        ("co-sort", sort_trace(4096, omega as usize)),
        ("mergesort", mergesort_trace(4096)),
        ("fft", fft_trace(4096)),
    ];
    for (name, trace) in traces {
        let m_i_blocks = 8usize; // ideal cache: 8 blocks
        let min = simulate_min(&trace, m_i_blocks, MinVariant::Classic);
        // RW-LRU with per-pool capacity 2*M_I.
        let lru_cfg = CacheConfig::new(2 * m_i_blocks * 8, 8, omega);
        let ql = replay_rw_lru(lru_cfg, &trace);
        let min_cost = min.cost(omega).max(1);
        let ql_cost = ql.cost(omega);
        let ratio = ql_cost as f64 / min_cost as f64;
        assert!(
            ratio < 3.0,
            "{name}: RW-LRU at 2M should be within 3x of MIN at M, got {ratio:.2} \
             ({ql_cost} vs {min_cost})"
        );
    }
}

#[test]
fn clean_first_min_never_writes_more_than_classic() {
    for (_, trace) in [
        ("co-sort", sort_trace(2048, 4)),
        ("mergesort", mergesort_trace(2048)),
    ] {
        for cap in [4usize, 16, 64] {
            let classic = simulate_min(&trace, cap, MinVariant::Classic);
            let clean = simulate_min(&trace, cap, MinVariant::CleanFirst);
            assert!(
                clean.writebacks <= classic.writebacks,
                "clean-first must not increase writebacks (cap {cap})"
            );
        }
    }
}

#[test]
fn min_loads_never_exceed_lru_loads_on_real_traces() {
    for (name, trace) in [("co-sort", sort_trace(2048, 4)), ("fft", fft_trace(1024))] {
        for cap_blocks in [4usize, 8, 32] {
            let min = simulate_min(&trace, cap_blocks, MinVariant::Classic);
            let t = Tracker::new(CacheConfig::new(cap_blocks * 8, 8, 4), PolicyChoice::Lru);
            for &(blk, w) in &trace {
                t.access(blk as usize * 8, w);
            }
            t.flush();
            assert!(
                min.loads <= t.stats().loads,
                "{name}: Belady must not load more than LRU at {cap_blocks} blocks"
            );
        }
    }
}

#[test]
fn larger_caches_never_load_more_under_lru() {
    // LRU on fully-associative caches has the inclusion property, so loads
    // are monotone in capacity.
    let trace = sort_trace(2048, 4);
    let mut last = u64::MAX;
    for cap_blocks in [2usize, 4, 8, 16, 64] {
        let t = Tracker::new(CacheConfig::new(cap_blocks * 8, 8, 4), PolicyChoice::Lru);
        for &(blk, w) in &trace {
            t.access(blk as usize * 8, w);
        }
        t.flush();
        let loads = t.stats().loads;
        assert!(
            loads <= last,
            "LRU loads must be monotone in capacity: {loads} after {last}"
        );
        last = loads;
    }
}

#[test]
fn policies_preserve_data_correctness() {
    // Whatever the policy, SimArray contents must equal the shadow
    // semantics (the cache only models cost, never corrupts data).
    let input = Workload::UniformRandom.generate(2000, 23);
    let mut expect = input.clone();
    expect.sort();
    for policy in [PolicyChoice::Lru, PolicyChoice::RwLru, PolicyChoice::Null] {
        let t = Tracker::new(CacheConfig::new(64, 8, 8), policy);
        let mut a = SimArray::from_vec(&t, input.clone());
        co_asym_sort(&mut a, 0, input.len(), 4, 64);
        assert_eq!(a.peek_slice(), expect.as_slice());
    }
}

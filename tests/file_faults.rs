//! Fault injection for the file-backed block store: transient I/O errors
//! (`ErrorKind::Interrupted`) and genuine short reads (a truncated backing
//! file) must surface as clean [`ModelError::Io`] values — never panics —
//! and must not corrupt the slot table: live-block accounting still
//! balances and untouched blocks stay readable.
//!
//! The `Interrupted` faults are injected through the workspace's own
//! [`FaultStore`] wrapping a real [`FileStore`], mounted with
//! [`EmMachine::with_store`] (the same extension point an out-of-tree
//! backend would use) and armed through its shared [`FaultPlan`]; the
//! short read is real — the temp file is truncated mid-block through a
//! second handle.

use asym_model::{ModelError, Record};
use em_sim::{
    Backend, BlockStore, EmConfig, EmMachine, EmVec, FaultPlan, FaultSpec, FaultStore, FileStore,
};

fn recs(keys: &[u64]) -> Vec<Record> {
    keys.iter().map(|&k| Record::keyed(k)).collect()
}

/// A machine on a real temp file behind an armable fault injector. The
/// probabilistic stream is left at zero rates: only armed faults fire, so
/// every test here is exactly deterministic.
fn faulty_machine(m: usize, b: usize) -> (EmMachine, FaultPlan) {
    faulty_machine_cfg(EmConfig::new(m, b, 8))
}

fn faulty_machine_cfg(cfg: EmConfig) -> (EmMachine, FaultPlan) {
    let b = cfg.b;
    let store = FaultStore::new(
        Box::new(FileStore::new(b).expect("temp file")),
        FaultSpec::new(0),
    );
    let plan = store.plan();
    let em = EmMachine::with_store(cfg, Box::new(store));
    assert_eq!(em.backend(), Backend::Custom);
    (em, plan)
}

#[test]
fn interrupted_reads_propagate_and_clear() {
    let (em, plan) = faulty_machine(32, 4);
    let id = em.append_block_from(&recs(&[1, 2, 3]));
    let live = em.live_blocks();

    plan.arm_reads(2);
    let mut buf = Vec::new();
    for _ in 0..2 {
        let err = em.read_block_into(id, &mut buf).unwrap_err();
        assert!(
            matches!(&err, ModelError::Io(msg) if msg.contains("interrupted")),
            "expected a clean Io(interrupted), got {err:?}"
        );
    }
    // The fault was transient: the very next read succeeds and the slot
    // table never drifted.
    em.read_block_into(id, &mut buf).unwrap();
    assert_eq!(buf, recs(&[1, 2, 3]));
    assert_eq!(em.live_blocks(), live, "a failed read must not leak slots");
    em.release_block(id).unwrap();
    assert_eq!(em.live_blocks(), live - 1);
}

#[test]
fn interrupted_writes_propagate_and_preserve_contents() {
    let (em, plan) = faulty_machine(32, 4);
    let id = em.append_block_from(&recs(&[5, 6]));

    plan.arm_writes(1);
    let err = em.write_block_from(id, &recs(&[9])).unwrap_err();
    assert!(matches!(err, ModelError::Io(_)), "got {err:?}");
    // The injected failure happened before the device was touched, so the
    // old contents — and the old live length — must still be there.
    assert_eq!(em.peek_block(id).unwrap(), recs(&[5, 6]));
    // Retry succeeds and the new length sticks.
    em.write_block_from(id, &recs(&[9])).unwrap();
    assert_eq!(em.peek_block(id).unwrap(), recs(&[9]));
    assert_eq!(em.live_blocks(), 1);
}

#[test]
fn algorithms_survive_a_transient_fault_without_slot_corruption() {
    use asym_core::em::{aem_mergesort, mergesort_slack};
    use asym_model::workload::Workload;

    let (m, b, k) = (32usize, 4usize, 2usize);
    let (em, plan) =
        faulty_machine_cfg(EmConfig::new(m, b, 8).with_slack(mergesort_slack(m, b, k)));
    let input = Workload::UniformRandom.generate(600, 31);
    let v = EmVec::stage(&em, &input);

    // First attempt dies mid-sort on an injected read fault. The skip lands
    // the fault inside the top-level merge (the run performs 634 reads in
    // total), whose transfers propagate `Result`s all the way out.
    plan.arm_reads_after(600, 1);
    let err = aem_mergesort(&em, v, k).unwrap_err();
    assert!(matches!(err, ModelError::Io(_)), "got {err:?}");

    // ...yet the store is not corrupted: accounting still balances (the
    // failed sort leaked only its own intermediates, which we can count),
    // and a fresh machine-wide workload completes correctly.
    let live_after_fault = em.live_blocks();
    assert!(live_after_fault > 0);
    let v2 = EmVec::stage(&em, &input);
    let sorted = aem_mergesort(&em, v2, k).expect("clean retry");
    let mut expect = input.clone();
    expect.sort();
    assert_eq!(sorted.read_all_uncharged(&em), expect);
    sorted.free(&em);
    assert_eq!(
        em.live_blocks(),
        live_after_fault,
        "the retry must release everything it allocated"
    );
}

#[test]
fn truncated_backing_file_yields_io_error_not_corruption() {
    let mut store = FileStore::new(4).expect("temp file");
    let a = store.alloc(&recs(&[1, 2, 3, 4]));
    let b = store.alloc(&recs(&[5, 6, 7, 8]));
    let path = store.path().to_path_buf();

    // A real short read: chop the file mid-way through block b's range via
    // a second handle.
    let len = std::fs::metadata(&path).expect("metadata").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("reopen backing file");
    file.set_len(len - 8).expect("truncate");

    let mut buf = Vec::new();
    let err = store.read_into(b, &mut buf).unwrap_err();
    assert!(matches!(err, ModelError::Io(_)), "got {err:?}");
    // Slot bookkeeping is untouched: block a still reads, live accounting
    // balances, and rewriting block b repairs the device.
    store.read_into(a, &mut buf).expect("block a intact");
    assert_eq!(buf, recs(&[1, 2, 3, 4]));
    assert_eq!(store.live_blocks(), 2);
    store.write(b, &recs(&[9, 10, 11, 12])).expect("rewrite");
    store.read_into(b, &mut buf).expect("repaired");
    assert_eq!(buf, recs(&[9, 10, 11, 12]));
    store.release(a).expect("release a");
    store.release(b).expect("release b");
    assert_eq!(store.live_blocks(), 0);
}

#[test]
fn charges_are_counted_even_when_the_device_faults() {
    // The machine charges costs *before* touching the store (that is what
    // makes EmStats backend-invariant), so an injected fault still counts
    // as an attempted transfer — the model's schedule, not the device's
    // luck, determines the cost.
    let (em, plan) = faulty_machine(16, 2);
    let id = em.append_block_from(&recs(&[1]));
    let before = em.stats();
    plan.arm_reads(1);
    let mut buf = Vec::new();
    assert!(em.read_block_into(id, &mut buf).is_err());
    let after = em.stats();
    assert_eq!(after.block_reads, before.block_reads + 1);
    assert_eq!(after.block_writes, before.block_writes);
}

//! Fault injection for the file-backed block store: transient I/O errors
//! (`ErrorKind::Interrupted`) and genuine short reads (a truncated backing
//! file) must surface as clean [`ModelError::Io`] values — never panics —
//! and must not corrupt the slot table: live-block accounting still
//! balances and untouched blocks stay readable.
//!
//! The `Interrupted` faults are injected through a wrapping
//! [`BlockStore`] mounted with [`EmMachine::with_store`] (the same
//! extension point an out-of-tree backend would use); the short read is
//! real — the temp file is truncated mid-block through a second handle.

use asym_model::{ModelError, Record, Result};
use em_sim::{Backend, BlockId, BlockStore, EmConfig, EmMachine, EmVec, FileStore};
use std::cell::Cell;
use std::rc::Rc;

/// Which operations the wrapper should fail next.
#[derive(Clone, Default)]
struct FaultPlan {
    /// Let this many reads through before the armed read faults fire.
    read_skip: Rc<Cell<u32>>,
    /// Fail this many upcoming reads with `Interrupted`, then recover.
    reads: Rc<Cell<u32>>,
    /// Fail this many upcoming writes with `Interrupted`, then recover.
    writes: Rc<Cell<u32>>,
}

impl FaultPlan {
    fn arm_reads(&self, n: u32) {
        self.reads.set(n);
    }
    /// Arm `n` read faults that fire only after `skip` successful reads —
    /// used to land a fault in a specific phase of an algorithm.
    fn arm_reads_after(&self, skip: u32, n: u32) {
        self.read_skip.set(skip);
        self.reads.set(n);
    }
    fn arm_writes(&self, n: u32) {
        self.writes.set(n);
    }
    fn take_read(&self) -> bool {
        let skip = self.read_skip.get();
        if skip > 0 {
            self.read_skip.set(skip - 1);
            return false;
        }
        Self::take(&self.reads)
    }
    fn take(cell: &Cell<u32>) -> bool {
        let left = cell.get();
        if left > 0 {
            cell.set(left - 1);
            true
        } else {
            false
        }
    }
}

fn interrupted() -> ModelError {
    ModelError::Io(std::io::Error::from(std::io::ErrorKind::Interrupted).to_string())
}

/// A [`BlockStore`] that interposes on a real [`FileStore`], injecting
/// transient errors per the shared [`FaultPlan`]. Slot bookkeeping stays in
/// the wrapped store, so a failed transfer must leave it untouched.
struct FaultStore {
    inner: FileStore,
    plan: FaultPlan,
}

impl BlockStore for FaultStore {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }
    fn alloc(&mut self, records: &[Record]) -> BlockId {
        self.inner.alloc(records)
    }
    fn read_into(&mut self, id: BlockId, out: &mut Vec<Record>) -> Result<()> {
        if self.plan.take_read() {
            return Err(interrupted());
        }
        self.inner.read_into(id, out)
    }
    fn write(&mut self, id: BlockId, records: &[Record]) -> Result<()> {
        if FaultPlan::take(&self.plan.writes) {
            return Err(interrupted());
        }
        self.inner.write(id, records)
    }
    fn release(&mut self, id: BlockId) -> Result<()> {
        self.inner.release(id)
    }
    fn live_blocks(&self) -> usize {
        self.inner.live_blocks()
    }
    fn slots(&self) -> usize {
        self.inner.slots()
    }
    fn peek_into(&mut self, id: BlockId, out: &mut Vec<Record>) -> Result<()> {
        self.inner.peek_into(id, out)
    }
}

fn recs(keys: &[u64]) -> Vec<Record> {
    keys.iter().map(|&k| Record::keyed(k)).collect()
}

fn faulty_machine(m: usize, b: usize) -> (EmMachine, FaultPlan) {
    let plan = FaultPlan::default();
    let store = FaultStore {
        inner: FileStore::new(b).expect("temp file"),
        plan: plan.clone(),
    };
    let em = EmMachine::with_store(EmConfig::new(m, b, 8), Box::new(store));
    assert_eq!(em.backend(), Backend::Custom);
    (em, plan)
}

#[test]
fn interrupted_reads_propagate_and_clear() {
    let (em, plan) = faulty_machine(32, 4);
    let id = em.append_block_from(&recs(&[1, 2, 3]));
    let live = em.live_blocks();

    plan.arm_reads(2);
    let mut buf = Vec::new();
    for _ in 0..2 {
        let err = em.read_block_into(id, &mut buf).unwrap_err();
        assert!(
            matches!(&err, ModelError::Io(msg) if msg.contains("interrupted")),
            "expected a clean Io(interrupted), got {err:?}"
        );
    }
    // The fault was transient: the very next read succeeds and the slot
    // table never drifted.
    em.read_block_into(id, &mut buf).unwrap();
    assert_eq!(buf, recs(&[1, 2, 3]));
    assert_eq!(em.live_blocks(), live, "a failed read must not leak slots");
    em.release_block(id).unwrap();
    assert_eq!(em.live_blocks(), live - 1);
}

#[test]
fn interrupted_writes_propagate_and_preserve_contents() {
    let (em, plan) = faulty_machine(32, 4);
    let id = em.append_block_from(&recs(&[5, 6]));

    plan.arm_writes(1);
    let err = em.write_block_from(id, &recs(&[9])).unwrap_err();
    assert!(matches!(err, ModelError::Io(_)), "got {err:?}");
    // The injected failure happened before the device was touched, so the
    // old contents — and the old live length — must still be there.
    assert_eq!(em.peek_block(id).unwrap(), recs(&[5, 6]));
    // Retry succeeds and the new length sticks.
    em.write_block_from(id, &recs(&[9])).unwrap();
    assert_eq!(em.peek_block(id).unwrap(), recs(&[9]));
    assert_eq!(em.live_blocks(), 1);
}

#[test]
fn algorithms_survive_a_transient_fault_without_slot_corruption() {
    use asym_core::em::{aem_mergesort, mergesort_slack};
    use asym_model::workload::Workload;

    let (m, b, k) = (32usize, 4usize, 2usize);
    let plan = FaultPlan::default();
    let store = FaultStore {
        inner: FileStore::new(b).expect("temp file"),
        plan: plan.clone(),
    };
    let em = EmMachine::with_store(
        EmConfig::new(m, b, 8).with_slack(mergesort_slack(m, b, k)),
        Box::new(store),
    );
    let input = Workload::UniformRandom.generate(600, 31);
    let v = EmVec::stage(&em, &input);

    // First attempt dies mid-sort on an injected read fault. The skip lands
    // the fault inside the top-level merge (the run performs 634 reads in
    // total), whose transfers propagate `Result`s all the way out.
    plan.arm_reads_after(600, 1);
    let err = aem_mergesort(&em, v, k).unwrap_err();
    assert!(matches!(err, ModelError::Io(_)), "got {err:?}");

    // ...yet the store is not corrupted: accounting still balances (the
    // failed sort leaked only its own intermediates, which we can count),
    // and a fresh machine-wide workload completes correctly.
    let live_after_fault = em.live_blocks();
    assert!(live_after_fault > 0);
    let v2 = EmVec::stage(&em, &input);
    let sorted = aem_mergesort(&em, v2, k).expect("clean retry");
    let mut expect = input.clone();
    expect.sort();
    assert_eq!(sorted.read_all_uncharged(&em), expect);
    sorted.free(&em);
    assert_eq!(
        em.live_blocks(),
        live_after_fault,
        "the retry must release everything it allocated"
    );
}

#[test]
fn truncated_backing_file_yields_io_error_not_corruption() {
    let mut store = FileStore::new(4).expect("temp file");
    let a = store.alloc(&recs(&[1, 2, 3, 4]));
    let b = store.alloc(&recs(&[5, 6, 7, 8]));
    let path = store.path().to_path_buf();

    // A real short read: chop the file mid-way through block b's range via
    // a second handle.
    let len = std::fs::metadata(&path).expect("metadata").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("reopen backing file");
    file.set_len(len - 8).expect("truncate");

    let mut buf = Vec::new();
    let err = store.read_into(b, &mut buf).unwrap_err();
    assert!(matches!(err, ModelError::Io(_)), "got {err:?}");
    // Slot bookkeeping is untouched: block a still reads, live accounting
    // balances, and rewriting block b repairs the device.
    store.read_into(a, &mut buf).expect("block a intact");
    assert_eq!(buf, recs(&[1, 2, 3, 4]));
    assert_eq!(store.live_blocks(), 2);
    store.write(b, &recs(&[9, 10, 11, 12])).expect("rewrite");
    store.read_into(b, &mut buf).expect("repaired");
    assert_eq!(buf, recs(&[9, 10, 11, 12]));
    store.release(a).expect("release a");
    store.release(b).expect("release b");
    assert_eq!(store.live_blocks(), 0);
}

#[test]
fn charges_are_counted_even_when_the_device_faults() {
    // The machine charges costs *before* touching the store (that is what
    // makes EmStats backend-invariant), so an injected fault still counts
    // as an attempted transfer — the model's schedule, not the device's
    // luck, determines the cost.
    let (em, plan) = faulty_machine(16, 2);
    let id = em.append_block_from(&recs(&[1]));
    let before = em.stats();
    plan.arm_reads(1);
    let mut buf = Vec::new();
    assert!(em.read_block_into(id, &mut buf).is_err());
    let after = em.stats();
    assert_eq!(after.block_reads, before.block_reads + 1);
    assert_eq!(after.block_writes, before.block_writes);
}

//! End-to-end agreement: every sorting algorithm in the workspace, on every
//! workload, produces the same answer as the standard library sort.

use asym_core::co::{co_asym_sort, co_mergesort};
use asym_core::em::{aem_heapsort, aem_mergesort, aem_samplesort};
use asym_core::em::{mergesort_slack, pq::pq_slack, samplesort_slack};
use asym_core::par::par_sample_sort;
use asym_core::pram::pram_sample_sort;
use asym_core::ram::tree_sort::tree_sort;
use asym_model::record::assert_sorted_permutation;
use asym_model::workload::Workload;
use asym_model::Record;
use cache_sim::{SimArray, Tracker};
use em_sim::{EmConfig, EmMachine, EmVec};
use rand::SeedableRng;

fn all_inputs() -> Vec<(String, Vec<Record>)> {
    let mut inputs = Vec::new();
    for wl in Workload::ALL {
        for n in [257usize, 1000] {
            inputs.push((format!("{}:{}", wl.name(), n), wl.generate(n, 0xBEEF)));
        }
    }
    inputs
}

#[test]
fn ram_tree_sort_agrees() {
    for (name, input) in all_inputs() {
        let out = tree_sort(&input);
        assert_sorted_permutation(&input, &out);
        let _ = name;
    }
}

#[test]
fn pram_sample_sort_agrees() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for (name, input) in all_inputs() {
        for step6 in [false, true] {
            let (out, report) = pram_sample_sort(&input, 8, &mut rng, step6);
            assert_sorted_permutation(&input, &out);
            assert!(report.total.depth > 0, "{name}");
        }
    }
}

#[test]
fn aem_mergesort_agrees() {
    let (m, b) = (32usize, 4usize);
    for k in [1usize, 2, 4] {
        let em = EmMachine::new(EmConfig::new(m, b, 8).with_slack(mergesort_slack(m, b, k)));
        for (name, input) in all_inputs() {
            let v = EmVec::stage(&em, &input);
            let sorted = aem_mergesort(&em, v, k).expect("sort");
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
            sorted.free(&em);
            assert_eq!(em.live_blocks(), 0, "{name}: leaked disk blocks");
        }
    }
}

#[test]
fn aem_samplesort_agrees() {
    let (m, b) = (32usize, 4usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for k in [1usize, 3] {
        let em = EmMachine::new(EmConfig::new(m, b, 8).with_slack(samplesort_slack(m, b, k)));
        for (_, input) in all_inputs() {
            let v = EmVec::stage(&em, &input);
            let sorted = aem_samplesort(&em, v, k, &mut rng).expect("sort");
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
            sorted.free(&em);
        }
    }
}

#[test]
fn aem_heapsort_agrees() {
    let (m, b) = (16usize, 2usize);
    for k in [1usize, 2] {
        let em = EmMachine::new(EmConfig::new(m, b, 8).with_slack(pq_slack(m, b, k)));
        for (_, input) in all_inputs() {
            let v = EmVec::stage(&em, &input);
            let sorted = aem_heapsort(&em, v, k).expect("sort");
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
            sorted.free(&em);
        }
    }
}

#[test]
fn cache_oblivious_sorts_agree() {
    for (_, input) in all_inputs() {
        let t = Tracker::null();
        let mut a = SimArray::from_vec(&t, input.clone());
        co_mergesort(&mut a, 0, input.len());
        assert_sorted_permutation(&input, a.peek_slice());

        for omega in [1usize, 4, 16] {
            let t = Tracker::null();
            let mut a = SimArray::from_vec(&t, input.clone());
            co_asym_sort(&mut a, 0, input.len(), omega, 64);
            assert_sorted_permutation(&input, a.peek_slice());
        }
    }
}

#[test]
fn threaded_sort_agrees() {
    for (_, input) in all_inputs() {
        for threads in [2usize, 4] {
            let out = par_sample_sort(&input, threads, 77);
            assert_sorted_permutation(&input, &out);
        }
    }
}

#[test]
fn all_sorts_agree_pairwise_on_one_input() {
    // One shared input through every algorithm; all outputs must be equal.
    let input = Workload::UniformRandom.generate(1200, 0xABCD);
    let mut expect = input.clone();
    expect.sort();

    assert_eq!(tree_sort(&input), expect);

    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    assert_eq!(pram_sample_sort(&input, 4, &mut rng, true).0, expect);

    let (m, b, k) = (32usize, 4usize, 2usize);
    let em = EmMachine::new(EmConfig::new(m, b, 8).with_slack(mergesort_slack(m, b, k)));
    let v = EmVec::stage(&em, &input);
    assert_eq!(
        aem_mergesort(&em, v, k)
            .expect("merge")
            .read_all_uncharged(&em),
        expect
    );

    let em2 = EmMachine::new(EmConfig::new(m, b, 8).with_slack(samplesort_slack(m, b, k)));
    let v = EmVec::stage(&em2, &input);
    assert_eq!(
        aem_samplesort(&em2, v, k, &mut rng)
            .expect("sample")
            .read_all_uncharged(&em2),
        expect
    );

    let em3 = EmMachine::new(EmConfig::new(16, 2, 8).with_slack(pq_slack(16, 2, 1)));
    let v = EmVec::stage(&em3, &input);
    assert_eq!(
        aem_heapsort(&em3, v, 1)
            .expect("heap")
            .read_all_uncharged(&em3),
        expect
    );

    let t = Tracker::null();
    let mut a = SimArray::from_vec(&t, input.clone());
    co_asym_sort(&mut a, 0, input.len(), 8, 64);
    assert_eq!(a.peek_slice(), expect.as_slice());

    assert_eq!(par_sample_sort(&input, 4, 5), expect);
}

//! End-to-end agreement: every sorting algorithm in the workspace, on every
//! workload, produces the same answer as the standard library sort. The
//! AEM sorts are enumerated generically through the unified
//! `asym_core::sort` registry — no per-algorithm call sites.

use asym_core::co::{co_asym_sort, co_mergesort};
use asym_core::par::par_sample_sort;
use asym_core::pram::pram_sample_sort;
use asym_core::ram::tree_sort::tree_sort;
use asym_core::sort::{sorters, Algorithm, SortSpec};
use asym_model::record::assert_sorted_permutation;
use asym_model::workload::Workload;
use asym_model::Record;
use cache_sim::{SimArray, Tracker};
use em_sim::Backend;
use rand::SeedableRng;

fn all_inputs() -> Vec<(String, Vec<Record>)> {
    let mut inputs = Vec::new();
    for wl in Workload::ALL {
        for n in [257usize, 1000] {
            inputs.push((format!("{}:{}", wl.name(), n), wl.generate(n, 0xBEEF)));
        }
    }
    inputs
}

/// A registry-sized spec: geometry per algorithm (the heapsort's buffer
/// tree is exercised deeper on a smaller machine, matching the legacy
/// suite's choices), lanes only for the parallel sort.
fn spec_for(algorithm: Algorithm, k: usize) -> SortSpec {
    let (m, b) = match algorithm {
        Algorithm::Heapsort => (16usize, 2usize),
        _ => (32usize, 4usize),
    };
    SortSpec::builder(algorithm, m, b, 8)
        .k(k)
        .lanes(if algorithm.is_parallel() { 4 } else { 1 })
        .seed(2)
        .build()
        .expect("valid spec")
}

#[test]
fn ram_tree_sort_agrees() {
    for (name, input) in all_inputs() {
        let out = tree_sort(&input);
        assert_sorted_permutation(&input, &out);
        let _ = name;
    }
}

#[test]
fn pram_sample_sort_agrees() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for (name, input) in all_inputs() {
        for step6 in [false, true] {
            let (out, report) = pram_sample_sort(&input, 8, &mut rng, step6);
            assert_sorted_permutation(&input, &out);
            assert!(report.total.depth > 0, "{name}");
        }
    }
}

#[test]
fn every_registered_aem_sort_agrees() {
    for sorter in sorters() {
        // Per-algorithm write-saving sweep matching the legacy suite's
        // coverage: deeper k changes the fan-in l = kM/B and the round
        // structure, so k > 2 is not redundant with k ∈ {1, 2}.
        let ks: &[usize] = match sorter.kind() {
            Algorithm::Mergesort => &[1, 2, 4],
            Algorithm::Samplesort => &[1, 3],
            _ => &[1, 2],
        };
        for &k in ks {
            let spec = spec_for(sorter.kind(), k);
            for (name, input) in all_inputs() {
                let outcome = sorter
                    .run(&spec, &input)
                    .unwrap_or_else(|e| panic!("{name} via {}: {e}", sorter.name()));
                assert_sorted_permutation(&input, &outcome.output);
            }
        }
    }
}

#[test]
fn duplicate_adversaries_agree_on_every_registered_sorter() {
    // The duplicate battery: all-identical and 90%-duplicate inputs through
    // every registry sorter, on both backends, across lane counts for the
    // parallel sort. Output must be byte-identical to the RAM stable sort
    // (duplicates make "sorted permutation" too weak a check on its own),
    // and for the parallel sort the merged write totals must not depend on
    // the lane count.
    for sorter in sorters() {
        let lane_set: &[usize] = if sorter.kind().is_parallel() {
            &[1, 2, 4, 8]
        } else {
            &[1]
        };
        for wl in Workload::DUPLICATE_ADVERSARIES {
            for n in [257usize, 1000] {
                let input = wl.generate(n, 0xBEEF);
                let mut expect = input.clone();
                expect.sort(); // std stable sort: the RAM reference
                for backend in [Backend::Mem, Backend::File] {
                    let mut write_total: Option<u64> = None;
                    for &lanes in lane_set {
                        let (m, b) = match sorter.kind() {
                            Algorithm::Heapsort => (16usize, 2usize),
                            _ => (32usize, 4usize),
                        };
                        let spec = SortSpec::builder(sorter.kind(), m, b, 8)
                            .k(2)
                            .lanes(lanes)
                            .seed(2)
                            .backend(backend)
                            .build()
                            .expect("valid spec");
                        let ctx = format!(
                            "{}:{n} via {} ({backend:?}, {lanes} lanes)",
                            wl.name(),
                            sorter.name()
                        );
                        let outcome = sorter
                            .run(&spec, &input)
                            .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                        assert_eq!(outcome.output, expect, "{ctx}: output differs");
                        match write_total {
                            None => write_total = Some(outcome.stats.block_writes),
                            Some(w) => assert_eq!(
                                outcome.stats.block_writes, w,
                                "{ctx}: write total not lane-invariant"
                            ),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn cache_oblivious_sorts_agree() {
    for (_, input) in all_inputs() {
        let t = Tracker::null();
        let mut a = SimArray::from_vec(&t, input.clone());
        co_mergesort(&mut a, 0, input.len());
        assert_sorted_permutation(&input, a.peek_slice());

        for omega in [1usize, 4, 16] {
            let t = Tracker::null();
            let mut a = SimArray::from_vec(&t, input.clone());
            co_asym_sort(&mut a, 0, input.len(), omega, 64);
            assert_sorted_permutation(&input, a.peek_slice());
        }
    }
}

#[test]
fn threaded_sort_agrees() {
    for (_, input) in all_inputs() {
        for threads in [2usize, 4] {
            let out = par_sample_sort(&input, threads, 77);
            assert_sorted_permutation(&input, &out);
        }
    }
}

#[test]
fn all_sorts_agree_pairwise_on_one_input() {
    // One shared input through every algorithm; all outputs must be equal.
    let input = Workload::UniformRandom.generate(1200, 0xABCD);
    let mut expect = input.clone();
    expect.sort();

    assert_eq!(tree_sort(&input), expect);

    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    assert_eq!(pram_sample_sort(&input, 4, &mut rng, true).0, expect);

    // Every AEM sort through the one front door.
    for sorter in sorters() {
        let spec = spec_for(sorter.kind(), 2);
        let outcome = sorter.run(&spec, &input).expect("registry sort");
        assert_eq!(outcome.output, expect, "{} disagrees", sorter.name());
    }

    let t = Tracker::null();
    let mut a = SimArray::from_vec(&t, input.clone());
    co_asym_sort(&mut a, 0, input.len(), 8, 64);
    assert_eq!(a.peek_slice(), expect.as_slice());

    assert_eq!(par_sample_sort(&input, 4, 5), expect);
}

//! Deprecation firewall: no workspace crate outside `tests/` may call the
//! deprecated per-algorithm sort entry points — everything routes through
//! the unified `asym_core::sort` API.
//!
//! The workspace allows the `deprecated` lint (so the integration tests
//! that deliberately pin the legacy paths, like `tests/cost_golden.rs`,
//! keep compiling under CI's `-D warnings`); this source scan is the
//! enforcement that the allowance is not abused by production code. CI runs
//! it as a named step, and it rides in `cargo test` like any other suite.

use std::path::{Path, PathBuf};

/// The deprecated free functions. Matching is on `name(`, which skips the
/// non-deprecated engine entry points (`aem_mergesort_opts(`) because of
/// the underscore following the prefix.
const DEPRECATED_CALLS: [&str; 4] = [
    "aem_mergesort(",
    "aem_samplesort(",
    "aem_heapsort(",
    "par_aem_sample_sort(",
];

/// Files that define the deprecated wrappers (their bodies and in-file unit
/// tests legitimately reference the names).
const DEFINING_FILES: [&str; 4] = [
    "crates/core/src/em/mergesort.rs",
    "crates/core/src/em/samplesort.rs",
    "crates/core/src/em/heapsort.rs",
    "crates/core/src/par/aem_sample_sort.rs",
];

fn workspace_root() -> PathBuf {
    // The umbrella package's manifest dir *is* the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files_under(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Remove comment text from one line: everything after `//`, and the
/// interior of `/* ... */` blocks (tracked across lines via
/// `in_block_comment`). Good enough for a firewall — Rust's nesting and
/// comment-markers-inside-strings corner cases would only ever *hide* a
/// violation inside what this treats as a comment, and those constructs
/// don't appear in the scanned sources.
fn strip_comments(line: &str, in_block_comment: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            match line[i..].find("*/") {
                Some(end) => {
                    *in_block_comment = false;
                    i += end + 2;
                }
                None => return out,
            }
        } else if line[i..].starts_with("//") {
            return out;
        } else if line[i..].starts_with("/*") {
            *in_block_comment = true;
            i += 2;
        } else {
            let ch = line[i..].chars().next().expect("in-bounds char");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    out
}

#[test]
fn no_non_test_code_calls_the_deprecated_entry_points() {
    let root = workspace_root();
    // Everything that ships: crate sources, bench targets, examples, the
    // umbrella crate. `tests/` is deliberately absent (tests excepted), as
    // are the shims (no sort code) and `target/`.
    let scanned_dirs = ["crates", "examples", "src"];
    let mut files = Vec::new();
    for dir in scanned_dirs {
        rust_files_under(&root.join(dir), &mut files);
    }
    assert!(
        files.len() > 20,
        "scan found suspiciously few files — wrong root?"
    );

    let mut violations = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(&root)
            .expect("scanned under root")
            .to_string_lossy()
            .replace('\\', "/");
        if DEFINING_FILES.contains(&rel.as_str()) {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read source file");
        let mut in_block_comment = false;
        for (lineno, line) in text.lines().enumerate() {
            // Comments (line, trailing, and /* */ blocks) may discuss the
            // legacy names; only code is scanned. String literals are not
            // special-cased — none of the workspace embeds these names in
            // strings, and a false positive there would still deserve a
            // look.
            let code = strip_comments(line, &mut in_block_comment);
            for call in DEPRECATED_CALLS {
                if code.contains(call) {
                    violations.push(format!("{rel}:{}: {}", lineno + 1, line.trim()));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "deprecated sort entry points called outside tests/ — route through \
         asym_core::sort instead:\n{}",
        violations.join("\n")
    );
}

#[test]
fn comment_stripping_skips_docs_but_not_code() {
    let mut blk = false;
    assert_eq!(
        strip_comments("let x = f(); // was aem_mergesort(a, b)", &mut blk),
        "let x = f(); "
    );
    assert_eq!(
        strip_comments("/* aem_mergesort(a) */ let y = 1;", &mut blk),
        " let y = 1;"
    );
    assert!(!blk);
    assert_eq!(strip_comments("code(); /* open", &mut blk), "code(); ");
    assert!(blk);
    assert_eq!(strip_comments("aem_mergesort(hidden)", &mut blk), "");
    assert_eq!(strip_comments("still */ tail()", &mut blk), " tail()");
    assert!(!blk);
    assert_eq!(
        strip_comments("aem_heapsort(em, v, k)", &mut blk),
        "aem_heapsort(em, v, k)"
    );
}

//! The unified sort API, end to end:
//!
//! * a registry-driven differential suite proving every `Sorter` adapter
//!   byte-identical — output *and* modeled `(reads, writes, peak_memory)` —
//!   to the legacy free-function entry points it replaces (the redesign
//!   must be provably cost-neutral; `tests/cost_golden.rs` separately
//!   freezes the absolute counts through the legacy names);
//! * `SortSpec` validation: every invalid combination is a typed
//!   `SpecError` (and backend faults a typed `ModelError`), never a panic;
//! * the §2 steal-charging knob: off by default (cost-neutral), folded into
//!   lane stats when enabled.
//!
//! The `ASYM_BENCH_*` absorption of `SortSpecBuilder::from_env` lives in
//! its own binary (`tests/sort_env.rs`) because it mutates the process
//! environment.

// The point of this suite is to compare against the deprecated entry points.
#![allow(deprecated)]

use asym_core::em::pq::pq_slack;
use asym_core::em::{
    aem_heapsort, aem_mergesort, aem_samplesort, mergesort_slack, samplesort_slack,
};
use asym_core::par::{par_aem_sample_sort, par_samplesort_slack};
use asym_core::sort::{self, sorter_for, sorters, Algorithm, SortSpec, SpecError};
use asym_model::workload::Workload;
use asym_model::{ModelError, Record};
use em_sim::{Backend, EmConfig, EmMachine, EmStats, EmVec, ParMachine};
use rand::rngs::StdRng;
use rand::SeedableRng;

const OMEGA: u64 = 8;
const SEED: u64 = 0xD1FF;

/// Run one legacy free function at the given geometry, returning what the
/// unified API would call the outcome: (output, merged stats).
fn legacy_run(
    algorithm: Algorithm,
    m: usize,
    b: usize,
    k: usize,
    lanes: usize,
    input: &[Record],
) -> (Vec<Record>, EmStats) {
    match algorithm {
        Algorithm::Mergesort => {
            let cfg = EmConfig::new(m, b, OMEGA).with_slack(mergesort_slack(m, b, k));
            let em = EmMachine::new(cfg);
            let v = EmVec::stage(&em, input);
            let sorted = aem_mergesort(&em, v, k).expect("legacy mergesort");
            let out = sorted.read_all_uncharged(&em);
            (out, em.stats())
        }
        Algorithm::Samplesort => {
            let cfg = EmConfig::new(m, b, OMEGA).with_slack(samplesort_slack(m, b, k));
            let em = EmMachine::new(cfg);
            let v = EmVec::stage(&em, input);
            let mut rng = StdRng::seed_from_u64(SEED);
            let sorted = aem_samplesort(&em, v, k, &mut rng).expect("legacy samplesort");
            let out = sorted.read_all_uncharged(&em);
            (out, em.stats())
        }
        Algorithm::Heapsort => {
            let cfg = EmConfig::new(m, b, OMEGA).with_slack(pq_slack(m, b, k));
            let em = EmMachine::new(cfg);
            let v = EmVec::stage(&em, input);
            let sorted = aem_heapsort(&em, v, k).expect("legacy heapsort");
            let out = sorted.read_all_uncharged(&em);
            (out, em.stats())
        }
        Algorithm::ParSamplesort => {
            let cfg = EmConfig::new(m, b, OMEGA).with_slack(par_samplesort_slack(m, b, k));
            let par = ParMachine::new(cfg, lanes);
            let run = par_aem_sample_sort(&par, input, k, SEED).expect("legacy par sort");
            (run.output, run.merged)
        }
    }
}

/// The registry spec matching `legacy_run`'s machine construction.
fn spec(algorithm: Algorithm, m: usize, b: usize, k: usize, lanes: usize) -> SortSpec {
    SortSpec::builder(algorithm, m, b, OMEGA)
        .k(k)
        .lanes(lanes)
        .seed(SEED)
        .build()
        .expect("valid spec")
}

#[test]
fn registry_is_byte_identical_to_the_legacy_entry_points() {
    // Every algorithm × two write-saving factors × three workloads: the
    // adapter and the free function must agree on output bytes and on every
    // modeled count — the redesign is provably cost-neutral.
    for sorter in sorters() {
        let algorithm = sorter.kind();
        let (m, b, lanes) = match algorithm {
            Algorithm::Heapsort => (16usize, 2usize, 1usize),
            Algorithm::ParSamplesort => (32, 4, 4),
            _ => (32, 4, 1),
        };
        for k in [1usize, 2] {
            for wl in [Workload::UniformRandom, Workload::Zipf, Workload::Sorted] {
                let input = wl.generate(700, 0x60_1D);
                let (legacy_out, legacy_stats) = legacy_run(algorithm, m, b, k, lanes, &input);
                let outcome = sorter
                    .run(&spec(algorithm, m, b, k, lanes), &input)
                    .expect("registry run");
                let label = format!("{} k={k} {wl:?}", sorter.name());
                assert_eq!(outcome.output, legacy_out, "{label}: output drifted");
                assert_eq!(
                    outcome.stats, legacy_stats,
                    "{label}: modeled costs drifted — the redesign must be cost-neutral"
                );
            }
        }
    }
}

#[test]
fn spec_validation_yields_typed_errors_never_panics() {
    // ω = 0.
    assert_eq!(
        SortSpec::builder(Algorithm::Mergesort, 32, 4, 0).build(),
        Err(SpecError::ZeroOmega)
    );
    // B > M.
    assert_eq!(
        SortSpec::builder(Algorithm::Samplesort, 4, 32, 8).build(),
        Err(SpecError::BlockExceedsMemory { b: 32, m: 4 })
    );
    // lanes = 0.
    assert_eq!(
        SortSpec::builder(Algorithm::ParSamplesort, 32, 4, 8)
            .lanes(0)
            .build(),
        Err(SpecError::ZeroLanes)
    );
    // Fan-in below 2 (kM/B = 1).
    assert_eq!(
        SortSpec::builder(Algorithm::Heapsort, 4, 4, 8).build(),
        Err(SpecError::FanInTooSmall { fan_in: 1 })
    );
    // k = 0.
    assert_eq!(
        SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
            .k(0)
            .build(),
        Err(SpecError::ZeroWriteFactor)
    );
    // Lanes on a sequential sort.
    assert!(matches!(
        SortSpec::builder(Algorithm::Heapsort, 32, 4, 8)
            .lanes(2)
            .build(),
        Err(SpecError::LanesOnSerialSort { .. })
    ));
    // Errors display human-readable text.
    let e = SortSpec::builder(Algorithm::Mergesort, 4, 32, 8)
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("B = 32"), "{e}");
}

#[test]
fn file_backend_in_unwritable_dir_is_a_typed_model_error() {
    let missing = std::env::temp_dir().join("asym-sort-api-no-such-dir-xyzzy");
    for algorithm in [Algorithm::Mergesort, Algorithm::ParSamplesort] {
        let spec = SortSpec::builder(algorithm, 32, 4, 8)
            .lanes(if algorithm.is_parallel() { 2 } else { 1 })
            .backend(Backend::File)
            .file_dir(&missing)
            .build()
            .expect("the spec itself is valid — the fault is at machine build");
        let input = Workload::UniformRandom.generate(100, 1);
        let err = sort::run(&spec, &input).unwrap_err();
        assert!(
            matches!(err, ModelError::Io(_)),
            "{algorithm}: expected ModelError::Io, got {err}"
        );
    }
    // A writable custom dir works (and is where the backing files land).
    let dir = std::env::temp_dir();
    let spec = SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
        .backend(Backend::File)
        .file_dir(&dir)
        .build()
        .expect("valid spec");
    let input = Workload::UniformRandom.generate(300, 2);
    let outcome = sort::run(&spec, &input).expect("file-backed run");
    let mut expect = input.clone();
    expect.sort();
    assert_eq!(outcome.output, expect);
}

#[test]
fn steal_charge_knob_is_off_by_default_and_folds_when_on() {
    let input = Workload::UniformRandom.generate(5000, 9);
    let base_spec = SortSpec::builder(Algorithm::ParSamplesort, 32, 4, OMEGA)
        .lanes(4)
        .seed(31)
        .build()
        .expect("valid spec");
    assert!(!base_spec.steal_charge(), "knob defaults off");
    let charged_spec = SortSpec::builder(Algorithm::ParSamplesort, 32, 4, OMEGA)
        .lanes(4)
        .seed(31)
        .steal_charge(true)
        .build()
        .expect("valid spec");

    let sorter = sorter_for(Algorithm::ParSamplesort);
    let base = sorter.run(&base_spec, &input).expect("base");
    let charged = sorter.run(&charged_spec, &input).expect("charged");

    // Identical schedule and output; the charge is an accounting overlay.
    assert_eq!(base.output, charged.output);
    let base_par = base.parallel.as_ref().expect("lane detail");
    let charged_par = charged.parallel.as_ref().expect("lane detail");
    assert_eq!(base_par.sched, charged_par.sched);
    assert_eq!(base_par.steal_warmup, EmStats::default());

    // Warm-up: M/B reads + M/B writes per successful steal, and the base
    // counts are recoverable by subtraction.
    let mb = 32u64 / 4;
    assert_eq!(
        charged_par.steal_warmup.block_reads,
        charged_par.sched.steals * mb
    );
    assert_eq!(
        charged_par.steal_warmup.block_writes,
        charged_par.sched.steals * mb
    );
    assert_eq!(charged.base_stats(), base.stats);
    assert_eq!(
        charged.stats.block_writes,
        base.stats.block_writes + charged_par.steal_warmup.block_writes
    );
    // The cost algebra stays consistent with the charged counters.
    assert_eq!(charged_par.cost.reads, charged.stats.block_reads);
    assert_eq!(charged_par.cost.writes, charged.stats.block_writes);
}

#[test]
fn mismatched_spec_and_sorter_is_a_typed_error() {
    let spec = spec(Algorithm::Mergesort, 32, 4, 1, 1);
    let err = sorter_for(Algorithm::Samplesort)
        .run(&spec, &[])
        .unwrap_err();
    assert!(matches!(err, ModelError::Invariant(_)));
    // Dispatching through sort::run always picks the matching adapter.
    assert!(sort::run(&spec, &[]).is_ok());
}

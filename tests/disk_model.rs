//! Property tests: the `BlockStore` backends against a naive
//! `HashMap<BlockId, Vec<Record>>` reference model, under random
//! alloc / write / read / release interleavings (including slot reuse
//! after release).
//!
//! The slab arena's correctness risk is aliasing: a recycled slot must
//! behave exactly like a fresh allocation, a released id must stay dead
//! even after its slot is reused, and writes through one id must never show
//! through another. The file backend adds offset arithmetic and stale-byte
//! masking (a shrunk block must hide the previous occupant's tail) on top.
//! The reference model has none of these hazards by construction; a second
//! proptest drives `FileStore` against it *and* against a lock-step
//! `MemStore` shadow, so the two backends are also pinned to hand out the
//! identical `BlockId` schedule.

use asym_model::Record;
use em_sim::{BlockId, BlockStore, Disk, FileStore, MemStore};
use proptest::prelude::*;
use std::collections::HashMap;

/// One scripted operation; block contents derive from (op seed, position).
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Allocate a block of `len % (B+1)` records.
    Alloc(u64),
    /// Overwrite the `i % live`-th live block with new contents.
    Write(u64, u64),
    /// Read the `i % live`-th live block and compare.
    Read(u64),
    /// Release the `i % live`-th live block.
    Release(u64),
    /// Read a released id and expect an error.
    ReadStale(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..5, 0u64..1_000_000, 0u64..1_000_000).prop_map(|(tag, a, b)| match tag {
        0 => Op::Alloc(a),
        1 => Op::Write(a, b),
        2 => Op::Read(a),
        3 => Op::Release(a),
        _ => Op::ReadStale(a),
    })
}

/// Deterministic block contents from a seed: `len` records keyed off `seed`.
fn block(seed: u64, len: usize) -> Vec<Record> {
    (0..len as u64)
        .map(|i| Record::new(seed.wrapping_mul(31).wrapping_add(i), seed))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn slab_disk_matches_hashmap_reference(
        ops in prop::collection::vec(op_strategy(), 1..300),
        b in 1usize..9,
    ) {
        let mut disk = Disk::new(b);
        let mut reference: HashMap<usize, Vec<Record>> = HashMap::new();
        let mut live: Vec<BlockId> = Vec::new();
        let mut dead: Vec<BlockId> = Vec::new();
        let mut read_buf: Vec<Record> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(seed) => {
                    let contents = block(seed, (seed as usize) % (b + 1));
                    let id = disk.alloc(&contents);
                    prop_assert!(
                        !reference.contains_key(&id.index()),
                        "arena handed out a live slot twice"
                    );
                    reference.insert(id.index(), contents);
                    live.push(id);
                    dead.retain(|d| d.index() != id.index());
                }
                Op::Write(pick, seed) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[(pick as usize) % live.len()];
                    let contents = block(seed, (seed as usize) % (b + 1));
                    disk.write(id, &contents).expect("live write");
                    reference.insert(id.index(), contents);
                }
                Op::Read(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[(pick as usize) % live.len()];
                    disk.read_into(id, &mut read_buf).expect("live read");
                    prop_assert_eq!(&read_buf, &reference[&id.index()]);
                    prop_assert_eq!(disk.slice(id).expect("live slice"), &reference[&id.index()][..]);
                }
                Op::Release(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = (pick as usize) % live.len();
                    let id = live.swap_remove(idx);
                    disk.release(id).expect("live release");
                    reference.remove(&id.index());
                    dead.push(id);
                }
                Op::ReadStale(pick) => {
                    if dead.is_empty() {
                        continue;
                    }
                    let id = dead[(pick as usize) % dead.len()];
                    // A released id must stay dead until its slot is reused.
                    prop_assert!(disk.read_into(id, &mut read_buf).is_err());
                    prop_assert!(disk.slice(id).is_err());
                    prop_assert!(disk.write(id, &[]).is_err());
                    prop_assert!(disk.release(id).is_err());
                }
            }
            prop_assert_eq!(disk.live_blocks(), reference.len());
        }
        // Final sweep: every live block still reads back exactly.
        for id in &live {
            prop_assert_eq!(disk.peek(*id).expect("live peek"), &reference[&id.index()][..]);
        }
        // Every slot ever carved out is either live or on the free list.
        prop_assert!(disk.slots() >= disk.live_blocks());
    }

    #[test]
    fn file_store_matches_reference_and_memstore(
        ops in prop::collection::vec(op_strategy(), 1..300),
        b in 1usize..9,
    ) {
        let mut file = FileStore::new(b).expect("temp file");
        let mut mem = MemStore::new(b);
        let mut reference: HashMap<usize, Vec<Record>> = HashMap::new();
        let mut live: Vec<BlockId> = Vec::new();
        let mut dead: Vec<BlockId> = Vec::new();
        let mut buf_file: Vec<Record> = Vec::new();
        let mut buf_mem: Vec<Record> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(seed) => {
                    let contents = block(seed, (seed as usize) % (b + 1));
                    let idf = BlockStore::alloc(&mut file, &contents);
                    let idm = mem.alloc(&contents);
                    prop_assert_eq!(idf, idm, "backends allocated different slots");
                    prop_assert!(!reference.contains_key(&idf.index()));
                    reference.insert(idf.index(), contents);
                    live.push(idf);
                    dead.retain(|d| d.index() != idf.index());
                }
                Op::Write(pick, seed) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[(pick as usize) % live.len()];
                    let contents = block(seed, (seed as usize) % (b + 1));
                    BlockStore::write(&mut file, id, &contents).expect("live write");
                    mem.write(id, &contents).expect("live write");
                    reference.insert(id.index(), contents);
                }
                Op::Read(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[(pick as usize) % live.len()];
                    file.read_into(id, &mut buf_file).expect("live read");
                    MemStore::read_into(&mem, id, &mut buf_mem).expect("live read");
                    prop_assert_eq!(&buf_file, &reference[&id.index()]);
                    prop_assert_eq!(&buf_file, &buf_mem);
                }
                Op::Release(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = (pick as usize) % live.len();
                    let id = live.swap_remove(idx);
                    BlockStore::release(&mut file, id).expect("live release");
                    mem.release(id).expect("live release");
                    reference.remove(&id.index());
                    dead.push(id);
                }
                Op::ReadStale(pick) => {
                    if dead.is_empty() {
                        continue;
                    }
                    let id = dead[(pick as usize) % dead.len()];
                    prop_assert!(file.read_into(id, &mut buf_file).is_err());
                    prop_assert!(BlockStore::write(&mut file, id, &[]).is_err());
                    prop_assert!(BlockStore::release(&mut file, id).is_err());
                }
            }
            prop_assert_eq!(file.live_blocks(), reference.len());
            prop_assert_eq!(file.live_blocks(), mem.live_blocks());
            prop_assert_eq!(file.slots(), mem.slots());
        }
        // Final sweep: every live block still reads back exactly, through the
        // uncharged peek path too.
        for id in &live {
            file.peek_into(*id, &mut buf_file).expect("live peek");
            prop_assert_eq!(&buf_file, &reference[&id.index()]);
        }
    }
}

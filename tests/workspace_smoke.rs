//! Workspace wiring smoke test: every umbrella re-export must resolve and
//! expose its headline types, so a manifest regression (dropped dependency,
//! renamed lib target) fails here before anything subtler does.

#[test]
fn umbrella_reexports_resolve() {
    // asym_sort::model — the shared cost substrate.
    let cost = asym_sort::model::CostModel::new(8);
    assert_eq!(cost.omega, 8);
    let counter = asym_sort::model::MemCounter::new();
    assert_eq!((counter.reads(), counter.writes()), (0, 0));
    let r = asym_sort::model::Record::keyed(1);
    assert!(r <= asym_sort::model::Record::keyed(2));

    // asym_sort::core — one entry point per machine model.
    let input = asym_sort::model::workload::Workload::UniformRandom.generate(512, 7);
    let sorted = asym_sort::core::ram::tree_sort::tree_sort(&input);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let par = asym_sort::core::par::par_sample_sort(&input, 2, 3);
    assert_eq!(par, sorted);

    // asym_sort::em_sim — the AEM machine charges reads 1 and writes omega.
    let em = asym_sort::em_sim::EmMachine::new(asym_sort::em_sim::EmConfig::new(64, 8, 5));
    em.charge_reads(3);
    em.charge_writes(2);
    assert_eq!(em.io_cost(), 3 + 5 * 2);

    // asym_sort::cache_sim — tracker counts accesses under LRU.
    let t = asym_sort::cache_sim::Tracker::new(
        asym_sort::cache_sim::CacheConfig::new(64, 8, 5),
        asym_sort::cache_sim::PolicyChoice::Lru,
    );
    t.access(0, false);
    t.flush();
    assert_eq!(t.stats().accesses, 1);

    // asym_sort::wd_sim — the work-depth algebra composes.
    let c = asym_sort::wd_sim::Cost::default();
    let seq = c.then(asym_sort::wd_sim::Cost::default());
    assert_eq!(seq.depth, 0);

    // asym_sort::serve — the job server's wire types resolve, and the
    // admission currency (predicted peak bytes) is computable standalone.
    let spec = asym_sort::core::sort::SortSpec::builder(
        asym_sort::core::sort::Algorithm::Mergesort,
        64,
        8,
        5,
    )
    .build()
    .expect("valid spec");
    let request = asym_sort::serve::JobRequest {
        spec,
        workload: asym_sort::model::workload::Workload::UniformRandom,
        records: 1000,
        data_seed: 1,
        input: None,
        include_output: false,
        deadline_ms: None,
        checkpoint: false,
    };
    assert!(request.predict().peak_bytes() > 0);
    let wire = request.to_json();
    assert_eq!(
        asym_sort::serve::JobRequest::from_json(&wire).expect("round trip"),
        request
    );

    // asym_sort::kv — the LSM engine opens, serves a round trip, and its
    // ω-aware policy chooser resolves.
    let mut cfg = asym_sort::kv::KvConfig::new(8);
    cfg.memtable_cap = 16;
    cfg.m = 128;
    cfg.b = 8;
    let mut kv = asym_sort::kv::AsymKv::new(cfg).expect("kv engine");
    for i in 0..40u64 {
        kv.put(i, i + 1).expect("put");
    }
    kv.delete(3).expect("delete");
    assert_eq!(kv.get(5).expect("get"), Some(6));
    assert_eq!(kv.get(3).expect("get"), None);
    let policy = asym_sort::kv::Policy::for_omega(32);
    assert_eq!(policy, asym_sort::kv::Policy::for_omega(32));
}

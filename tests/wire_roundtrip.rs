//! Property tests for the JSON wire format: arbitrary valid job
//! descriptions and real sort outcomes must survive
//! `to_json`/`from_json` unchanged, and damaged documents must come back
//! as typed [`WireError`]s, never panics.

use asym_core::sort::{run, Algorithm, SortOutcome, SortSpec, WireError};
use asym_model::workload::Workload;
use em_sim::{Backend, FaultSpec};
use proptest::prelude::*;

/// An arbitrary *valid* spec: geometry drawn from shapes every algorithm
/// accepts, full-range seeds (the exact-integer case the codec exists for),
/// lanes forced to 1 on the serial sorts, and roughly half carrying a
/// fault schedule (full-range seed, any legal permille rates).
fn arb_spec() -> impl Strategy<Value = SortSpec> {
    (
        (0usize..4, 0usize..3, 1u64..64, 1usize..5),
        (0u64..u64::MAX, 0usize..2, 0u8..2, 1usize..5),
        (0u8..2, 0u64..u64::MAX, 0u16..1001, 0u16..1001, 0u16..1001),
    )
        .prop_map(
            |(
                (alg, shape, omega, k),
                (seed, backend, steal, lanes),
                (faulty, fault_seed, read, write, short),
            )| {
                let algorithm = Algorithm::ALL[alg];
                let (m, b) = [(32usize, 4usize), (64, 8), (128, 8)][shape];
                let backend = [Backend::Mem, Backend::File][backend];
                let mut builder = SortSpec::builder(algorithm, m, b, omega)
                    .k(k)
                    .seed(seed)
                    .backend(backend);
                if algorithm.is_parallel() {
                    builder = builder.lanes(lanes).steal_charge(steal == 1);
                }
                if backend == Backend::File {
                    builder = builder.file_dir(format!("/tmp/wire-{seed}"));
                }
                if faulty == 1 {
                    builder = builder.fault(Some(FaultSpec {
                        seed: fault_seed,
                        read_permille: read,
                        write_permille: write,
                        short_permille: short,
                        panic_permille: 0,
                    }));
                }
                builder.build().expect("generated specs are valid")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn specs_round_trip_exactly(spec in arb_spec()) {
        let text = spec.to_json();
        let decoded = SortSpec::from_json(&text).expect("decode");
        prop_assert_eq!(&decoded, &spec);
        // Re-encoding is a fixed point: same document both times.
        prop_assert_eq!(decoded.to_json(), text);
    }

    #[test]
    fn strict_prefixes_of_a_spec_document_fail_typed_not_panicking(
        spec in arb_spec(),
        cut in 0usize..1000,
    ) {
        let text = spec.to_json();
        let cut = cut % text.len(); // every strict prefix index
        let err = SortSpec::from_json(&text[..cut]).expect_err("prefix cannot decode");
        prop_assert!(matches!(err, WireError::Malformed(_)));
    }

    #[test]
    fn outcomes_round_trip_through_telemetry(
        seeds in (0u64..u64::MAX, 0u64..u64::MAX),
        n in 64usize..600,
        alg in 0usize..4,
        wl in 0usize..3,
    ) {
        let algorithm = Algorithm::ALL[alg];
        let workload = [Workload::UniformRandom, Workload::Zipf, Workload::NearlySorted][wl];
        let spec = SortSpec::builder(algorithm, 32, 4, 8)
            .k(2)
            .lanes(if algorithm.is_parallel() { 3 } else { 1 })
            .seed(seeds.0)
            .build()
            .expect("valid spec");
        let input = workload.generate(n, seeds.1);
        let outcome = run(&spec, &input).expect("sort");
        let decoded = SortOutcome::from_json(&outcome.to_json(true)).expect("decode");
        prop_assert_eq!(&decoded.output, &outcome.output, "full-range keys must survive");
        prop_assert_eq!(decoded.stats, outcome.stats);
        prop_assert_eq!(decoded.report, outcome.report);
        prop_assert_eq!(&decoded.parallel, &outcome.parallel);
        // Telemetry-only form drops the payload but keeps the counts.
        let lean = SortOutcome::from_json(&outcome.to_json(false)).expect("decode");
        prop_assert!(lean.output.is_empty());
        prop_assert_eq!(lean.stats, outcome.stats);
    }
}

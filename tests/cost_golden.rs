//! Cost-invariance regression tests: golden `(block_reads, block_writes,
//! peak_memory)` counts for small fixed E3/E5/E6 configurations.
//!
//! The modeled costs are the *scientific output* of this repo — simulator
//! performance work (arena storage, buffer reuse, the flat merge queue) must
//! never change them. The golden triples below were captured from the seed
//! implementation (clone-per-I/O disk, BTreeMap merge queue); any drift is a
//! model regression, not a tuning knob.

use asym_core::em::mergesort::mergesort_slack;
use asym_core::em::pq::pq_slack;
use asym_core::em::samplesort::samplesort_slack;
use asym_core::em::{aem_heapsort, aem_mergesort, aem_samplesort};
use asym_model::workload::Workload;
use em_sim::{EmConfig, EmMachine, EmVec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One golden measurement: (block_reads, block_writes, peak_memory).
type Golden = (u64, u64, usize);

fn measure_wl(
    em: &EmMachine,
    sort: impl FnOnce(&EmMachine, EmVec) -> EmVec,
    wl: Workload,
    n: usize,
) -> Golden {
    let input = wl.generate(n, 0x60_1D);
    let v = EmVec::stage(em, &input);
    em.reset_stats();
    let sorted = sort(em, v);
    assert_eq!(sorted.len(), n);
    let s = em.stats();
    (s.block_reads, s.block_writes, s.peak_memory)
}

fn mergesort_golden_wl(m: usize, b: usize, k: usize, wl: Workload, n: usize) -> Golden {
    let em = EmMachine::new(EmConfig::new(m, b, 8).with_slack(mergesort_slack(m, b, k)));
    measure_wl(
        &em,
        |em, v| aem_mergesort(em, v, k).expect("mergesort"),
        wl,
        n,
    )
}

fn mergesort_golden(m: usize, b: usize, k: usize, n: usize) -> Golden {
    mergesort_golden_wl(m, b, k, Workload::UniformRandom, n)
}

fn samplesort_golden_wl(m: usize, b: usize, k: usize, wl: Workload, n: usize) -> Golden {
    let em = EmMachine::new(EmConfig::new(m, b, 8).with_slack(samplesort_slack(m, b, k)));
    measure_wl(
        &em,
        |em, v| {
            let mut rng = StdRng::seed_from_u64(0xE5);
            aem_samplesort(em, v, k, &mut rng).expect("samplesort")
        },
        wl,
        n,
    )
}

fn samplesort_golden(m: usize, b: usize, k: usize, n: usize) -> Golden {
    samplesort_golden_wl(m, b, k, Workload::UniformRandom, n)
}

fn heapsort_golden_wl(m: usize, b: usize, k: usize, wl: Workload, n: usize) -> Golden {
    let em = EmMachine::new(EmConfig::new(m, b, 8).with_slack(pq_slack(m, b, k)));
    measure_wl(
        &em,
        |em, v| aem_heapsort(em, v, k).expect("heapsort"),
        wl,
        n,
    )
}

fn heapsort_golden(m: usize, b: usize, k: usize, n: usize) -> Golden {
    heapsort_golden_wl(m, b, k, Workload::UniformRandom, n)
}

#[test]
fn e3_mergesort_costs_are_frozen() {
    // (M, B, ω) = (32, 4, 8), n = 500, uniform-random workload, seed 0x601D.
    assert_eq!(mergesort_golden(32, 4, 1, 500), (375, 375, 48), "E3 k=1");
    assert_eq!(mergesort_golden(32, 4, 2, 500), (424, 250, 56), "E3 k=2");
    assert_eq!(mergesort_golden(32, 4, 4, 500), (637, 250, 72), "E3 k=4");
}

#[test]
fn e5_samplesort_costs_are_frozen() {
    // (M, B, ω) = (32, 4, 8), n = 600, splitter rng seed 0xE5.
    assert_eq!(samplesort_golden(32, 4, 1, 600), (1897, 1467, 52), "E5 k=1");
    assert_eq!(samplesort_golden(32, 4, 2, 600), (1456, 895, 52), "E5 k=2");
}

#[test]
fn e6_heapsort_costs_are_frozen() {
    // (M, B, ω) = (16, 2, 8), n = 800, buffer-tree priority queue.
    assert_eq!(heapsort_golden(16, 2, 1, 800), (5561, 5096, 24), "E6 k=1");
    assert_eq!(heapsort_golden(16, 2, 2, 800), (6670, 4424, 24), "E6 k=2");
}

#[test]
fn duplicate_input_costs_are_frozen() {
    // The duplicate adversaries get their own frozen triples: the provenance
    // tie-break makes these runs correct, and these goldens pin their costs
    // the same way the unique-input goldens above pin theirs. Captured from
    // the first duplicate-safe implementation; same geometries as E3/E5/E6.
    use Workload::{AllIdentical, DuplicateHeavy};
    assert_eq!(
        mergesort_golden_wl(32, 4, 2, AllIdentical, 500),
        (258, 250, 56),
        "E3 k=2 all-identical"
    );
    assert_eq!(
        mergesort_golden_wl(32, 4, 2, DuplicateHeavy, 500),
        (418, 250, 56),
        "E3 k=2 duplicate-heavy"
    );
    assert_eq!(
        samplesort_golden_wl(32, 4, 2, AllIdentical, 600),
        (1226, 767, 59),
        "E5 k=2 all-identical"
    );
    assert_eq!(
        samplesort_golden_wl(32, 4, 2, DuplicateHeavy, 600),
        (1294, 770, 52),
        "E5 k=2 duplicate-heavy"
    );
    assert_eq!(
        heapsort_golden_wl(16, 2, 2, AllIdentical, 800),
        (5290, 4024, 24),
        "E6 k=2 all-identical"
    );
    assert_eq!(
        heapsort_golden_wl(16, 2, 2, DuplicateHeavy, 800),
        (6638, 4493, 24),
        "E6 k=2 duplicate-heavy"
    );
}

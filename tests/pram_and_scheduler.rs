//! Theorem 3.2 work-depth shape and the §2 scheduler-bound simulation,
//! exercised end to end across `asym-core`, `wd-sim`, and `asym-model`.

use asym_core::pram::{pram_merge_sort, pram_sample_sort, prefix_sums};
use asym_model::workload::Workload;
use rand::SeedableRng;
use wd_sim::{simulate_work_stealing, time_on, Cost, Task};

#[test]
fn theorem_3_2_work_shape() {
    let omega = 8u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut rows: Vec<(usize, f64, f64)> = Vec::new();
    for e in [11u32, 13, 15] {
        let n = 1usize << e;
        let input = Workload::UniformRandom.generate(n, e as u64);
        let (_, report) = pram_sample_sort(&input, omega, &mut rng, true);
        let nf = n as f64;
        rows.push((
            n,
            report.total.reads as f64 / (nf * nf.log2()),
            report.total.writes as f64 / nf,
        ));
    }
    // reads/(n lg n) and writes/n must both be ~flat.
    let (_, r0, w0) = rows[0];
    let (_, r2, w2) = rows[rows.len() - 1];
    assert!(r2 < r0 * 1.5, "reads/(n lg n) drifting: {r0:.2} -> {r2:.2}");
    assert!(w2 < w0 * 1.5, "writes/n drifting: {w0:.2} -> {w2:.2}");
}

#[test]
fn brents_theorem_on_measured_costs() {
    let omega = 8u64;
    let input = Workload::UniformRandom.generate(1 << 12, 3);
    let (_, cost) = pram_merge_sort(&input, omega);
    let t1 = time_on(cost, 1, omega);
    let t64 = time_on(cost, 64, omega);
    let tinf = time_on(cost, u64::MAX, omega);
    assert!(t64 < t1 / 16, "64 processors should give large speedup");
    assert_eq!(tinf, cost.depth + 1, "infinite processors leave the depth");
}

#[test]
fn prefix_sum_depth_composes_with_sorting() {
    // Sequential composition: depths add; parallel: max. Verify on a
    // two-phase computation.
    let omega = 4u64;
    let xs = vec![1u64; 4096];
    let (_, scan) = prefix_sums(&xs, omega);
    let input = Workload::UniformRandom.generate(4096, 5);
    let (_, sort) = pram_merge_sort(&input, omega);
    let seq = scan.then(sort);
    let par = scan.par(sort);
    assert_eq!(seq.depth, scan.depth + sort.depth);
    assert_eq!(par.depth, scan.depth.max(sort.depth));
    assert_eq!(seq.reads, par.reads);
    assert_eq!(seq.writes, par.writes);
    assert_eq!(Cost::ZERO.then(scan), scan);
}

#[test]
fn steal_count_scales_with_p_times_depth() {
    let task = Task::balanced(256, 32, 1);
    let d = task.depth();
    for p in [4usize, 16] {
        let mut total = 0u64;
        let trials = 6;
        for seed in 0..trials {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            total += simulate_work_stealing(&task, p, &mut rng).steals;
        }
        let mean = total as f64 / trials as f64;
        assert!(
            mean <= 4.0 * p as f64 * d as f64,
            "p={p}: mean steals {mean} beyond 4pD"
        );
    }
}

#[test]
fn private_cache_bound_qp_from_steals() {
    // Qp <= Q1 + 2(M/B) * steals: the asymmetric charge per steal. Verify
    // the additive term stays a small fraction of Q1 for realistic shapes.
    let task = Task::balanced(512, 128, 1);
    let p = 8usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let s = simulate_work_stealing(&task, p, &mut rng);
    let (m, b) = (1024u64, 16u64);
    let q1 = task.work() / b; // a scan-like Q1 baseline
    let extra = 2 * (m / b) * s.steals;
    // The bound itself:
    let bound = q1 + extra;
    assert!(bound >= q1);
    // And the steal-derived term is O(p * D * M/B):
    assert!(
        extra <= 4 * p as u64 * task.depth() * m / b,
        "extra {extra} beyond O(pDM/B)"
    );
}

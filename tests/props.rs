//! Property-based tests (proptest) on the core data structures and
//! invariants, across crates.

use asym_core::em::pq::{pq_slack, AemPriorityQueue};
use asym_core::em::{aem_mergesort, mergesort_slack};
use asym_core::pram::prefix_sums;
use asym_core::ram::rbtree::RbTree;
use asym_model::{MemCounter, Record};
use cache_sim::{simulate_min, CacheConfig, MinVariant, PolicyChoice, SimArray, Tracker};
use em_sim::{EmConfig, EmMachine, EmVec};
use proptest::prelude::*;

fn record_vec(max_len: usize) -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec((0u64..1000, 0u64..1_000_000), 0..max_len).prop_map(|pairs| {
        let mut v: Vec<Record> = pairs.into_iter().map(|(k, p)| Record::new(k, p)).collect();
        // Unique records (the paper's convention).
        v.sort();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rbtree_matches_btreeset(ops in prop::collection::vec((0u8..3, 0u64..500), 1..400)) {
        let mut tree = RbTree::new(MemCounter::new());
        let mut reference = std::collections::BTreeSet::new();
        for (op, key) in ops {
            let r = Record::keyed(key);
            match op {
                0 | 1 => {
                    prop_assert_eq!(tree.insert(r), reference.insert(r));
                }
                _ => {
                    prop_assert_eq!(tree.delete_min(), reference.pop_first());
                }
            }
            prop_assert_eq!(tree.len(), reference.len());
        }
        tree.validate();
        let mut out = Vec::new();
        tree.in_order(|r| out.push(r));
        let expect: Vec<Record> = reference.into_iter().collect();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn aem_mergesort_sorts_arbitrary_records(input in record_vec(600), k in 1usize..4) {
        let (m, b) = (16usize, 4usize);
        let em = EmMachine::new(EmConfig::new(m, b, 4).with_slack(mergesort_slack(m, b, k)));
        let v = EmVec::stage(&em, &input);
        let sorted = aem_mergesort(&em, v, k).expect("sort");
        let out = sorted.read_all_uncharged(&em);
        let mut expect = input.clone();
        expect.sort();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn aem_pq_is_a_priority_queue(ops in prop::collection::vec((0u8..2, 0u64..100_000), 1..500)) {
        let (m, b, k) = (16usize, 2usize, 1usize);
        let em = EmMachine::new(EmConfig::new(m, b, 4).with_slack(pq_slack(m, b, k)));
        let mut pq = AemPriorityQueue::new(em, k).expect("pq");
        let mut reference = std::collections::BTreeSet::new();
        let mut uid = 0u64;
        for (op, key) in ops {
            if op == 0 || reference.is_empty() {
                let r = Record::new(key, uid);
                uid += 1;
                pq.insert(r).expect("insert");
                reference.insert(r);
            } else {
                prop_assert_eq!(pq.delete_min().expect("dm"), reference.pop_first());
            }
            prop_assert_eq!(pq.len(), reference.len());
        }
        while let Some(expect) = reference.pop_first() {
            prop_assert_eq!(pq.delete_min().expect("dm"), Some(expect));
        }
        prop_assert_eq!(pq.delete_min().expect("dm"), None);
    }

    #[test]
    fn prefix_sums_match_reference(xs in prop::collection::vec(0u64..1000, 0..300), omega in 1u64..16) {
        let (got, cost) = prefix_sums(&xs, omega);
        let mut acc = 0u64;
        let mut expect = vec![0u64];
        for &x in &xs {
            acc += x;
            expect.push(acc);
        }
        prop_assert_eq!(got, expect);
        if xs.len() > 1 {
            prop_assert!(cost.depth <= cost.reads + omega * cost.writes);
        }
    }

    #[test]
    fn cache_sim_preserves_shadow_memory(
        writes in prop::collection::vec((0usize..256, 0u64..1000), 1..300),
        cap_blocks in 1usize..8,
    ) {
        let t = Tracker::new(CacheConfig::new(cap_blocks * 8, 8, 4), PolicyChoice::Lru);
        let mut a = SimArray::from_vec(&t, vec![0u64; 256]);
        let mut shadow = vec![0u64; 256];
        for (i, v) in writes {
            a.write(i, v);
            shadow[i] = v;
            prop_assert_eq!(a.read(i), shadow[i]);
        }
        for (i, &expect) in shadow.iter().enumerate() {
            prop_assert_eq!(a.peek(i), expect);
        }
    }

    #[test]
    fn min_is_optimal_bracket_for_lru(
        trace in prop::collection::vec((0u32..24, any::<bool>()), 1..400),
        cap in 1usize..10,
    ) {
        let min = simulate_min(&trace, cap, MinVariant::Classic);
        let t = Tracker::new(CacheConfig::new(cap * 4, 4, 4), PolicyChoice::Lru);
        for &(blk, w) in &trace {
            t.access(blk as usize * 4, w);
        }
        t.flush();
        let lru = t.stats();
        prop_assert!(min.loads <= lru.loads,
            "Belady loads {} must not exceed LRU loads {}", min.loads, lru.loads);
        // Both policies see the same access count.
        prop_assert_eq!(min.accesses, lru.accesses);
    }

    #[test]
    fn buffer_tree_pops_in_global_order(keys in prop::collection::vec(0u64..1_000_000, 1..700)) {
        use asym_core::em::buffer_tree::BufferTree;
        let (m, b) = (16usize, 2usize);
        let em = EmMachine::new(EmConfig::new(m, b, 4).with_slack(m + 8 * b + m / b * 2));
        let mut tree = BufferTree::new(em, 1).expect("tree");
        let mut expect: Vec<Record> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Record::new(k, i as u64))
            .collect();
        for &r in &expect {
            tree.insert(r).expect("insert");
        }
        expect.sort();
        let mut drained: Vec<Record> = Vec::new();
        while let Some(batch) = tree.pop_leftmost_leaf().expect("pop") {
            prop_assert!(batch.windows(2).all(|w| w[0] <= w[1]), "batch sorted");
            drained.extend(batch);
        }
        prop_assert_eq!(drained, expect);
        tree.validate();
    }

    #[test]
    fn mergesort_pointer_ablation_still_sorts(input in record_vec(500)) {
        use asym_core::em::mergesort::{aem_mergesort_opts, MergeOpts};
        let (m, b, k) = (16usize, 4usize, 2usize);
        let em = EmMachine::new(EmConfig::new(m, b, 4).with_slack(mergesort_slack(m, b, k)));
        let v = EmVec::stage(&em, &input);
        let sorted = aem_mergesort_opts(&em, v, k, MergeOpts { pointers_on_disk: true })
            .expect("sort");
        let out = sorted.read_all_uncharged(&em);
        let mut expect = input.clone();
        expect.sort();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn em_machine_cost_is_reads_plus_omega_writes(
        reads in 0u64..1000, writes in 0u64..1000, omega in 1u64..64,
    ) {
        let em = EmMachine::new(EmConfig::new(8, 4, omega));
        em.charge_reads(reads);
        em.charge_writes(writes);
        prop_assert_eq!(em.io_cost(), reads + omega * writes);
        let report = em.report();
        prop_assert_eq!(report.total(), em.io_cost());
    }
}

//! Theorem-level cost checks across crates: the measured transfer counts of
//! the AEM algorithms against the paper's closed-form bounds, on a grid of
//! machine shapes.

use asym_core::em::{
    aem_heapsort, aem_mergesort, aem_samplesort, mergesort_slack, pq::pq_slack, samplesort_slack,
    selection_sort,
};
use asym_model::stats::ceil_log_base;
use asym_model::workload::Workload;
use em_sim::{EmConfig, EmMachine, EmVec};
use rand::SeedableRng;

#[test]
fn lemma_4_2_exact_bounds_across_grid() {
    for (m, b) in [(16usize, 4usize), (32, 4), (64, 8), (128, 16)] {
        for passes in [1usize, 2, 3, 5] {
            let n = (passes * m).saturating_sub(3).max(1);
            let em = EmMachine::new(EmConfig::new(m, b, 8).with_slack(2 * b));
            let input = Workload::UniformRandom.generate(n, 9);
            let v = EmVec::stage(&em, &input);
            em.reset_stats();
            let sorted = selection_sort(&em, &v, passes).expect("sort");
            let s = em.stats();
            let blocks = n.div_ceil(b) as u64;
            let p = n.div_ceil(m) as u64;
            assert!(
                s.block_reads <= p * blocks,
                "(m={m},b={b},n={n}): reads {} > {}",
                s.block_reads,
                p * blocks
            );
            assert_eq!(s.block_writes, blocks, "(m={m},b={b},n={n})");
            assert_eq!(sorted.len(), n);
        }
    }
}

#[test]
fn theorem_4_3_bounds_across_grid() {
    for (m, b, k, n) in [
        (32usize, 4usize, 1usize, 3000usize),
        (32, 4, 2, 3000),
        (32, 4, 4, 3000),
        (64, 8, 2, 6000),
        (64, 8, 6, 6000),
        (128, 16, 3, 10000),
    ] {
        let em = EmMachine::new(EmConfig::new(m, b, 8).with_slack(mergesort_slack(m, b, k)));
        let input = Workload::UniformRandom.generate(n, 4);
        let v = EmVec::stage(&em, &input);
        em.reset_stats();
        let sorted = aem_mergesort(&em, v, k).expect("sort");
        assert_eq!(sorted.len(), n);
        let s = em.stats();
        let blocks = n.div_ceil(b) as u64;
        let levels = ceil_log_base((k * m) as f64 / b as f64, blocks as f64);
        assert!(
            s.block_reads <= (k as u64 + 1) * blocks * levels,
            "(m={m},b={b},k={k}): reads {} > (k+1)(n/B)levels = {}",
            s.block_reads,
            (k as u64 + 1) * blocks * levels
        );
        assert!(
            s.block_writes <= blocks * levels,
            "(m={m},b={b},k={k}): writes {} > (n/B)levels = {}",
            s.block_writes,
            blocks * levels
        );
    }
}

#[test]
fn mergesort_write_envelope_across_omega_grid() {
    // The paper's write-efficient operating point sets k = ω, making the
    // merge fan-in ωM/B; writes must then stay within the closed-form
    // O((n/B)·log_{ωM/B}(n/B)) envelope for every ω — not just at the
    // frozen golden counts. Empirically the bound is exact (each level
    // writes each block once), so no slop constant is applied.
    for (m, b, n) in [(64usize, 8usize, 20_000usize), (32, 4, 10_000)] {
        let mut last_writes = u64::MAX;
        for omega in [1u64, 2, 8, 32] {
            let k = omega as usize;
            let em =
                EmMachine::new(EmConfig::new(m, b, omega).with_slack(mergesort_slack(m, b, k)));
            let input = Workload::UniformRandom.generate(n, 4);
            let v = EmVec::stage(&em, &input);
            em.reset_stats();
            let sorted = aem_mergesort(&em, v, k).expect("sort");
            assert_eq!(sorted.len(), n);
            let s = em.stats();
            let blocks = n.div_ceil(b) as u64;
            let levels = ceil_log_base((omega as usize * m) as f64 / b as f64, blocks as f64);
            assert!(
                s.block_writes <= blocks * levels,
                "(m={m},b={b},omega={omega}): writes {} > (n/B)·log_{{ωM/B}}(n/B) = {}",
                s.block_writes,
                blocks * levels
            );
            // Reads pay for the write savings but stay within (k+1) per level.
            assert!(
                s.block_reads <= (omega + 1) * blocks * levels,
                "(m={m},b={b},omega={omega}): reads {} out of the (k+1)-fold envelope {}",
                s.block_reads,
                (omega + 1) * blocks * levels
            );
            // Raising ω (with k = ω) can only shrink the write total.
            assert!(
                s.block_writes <= last_writes,
                "(m={m},b={b},omega={omega}): writes must be non-increasing in ω"
            );
            last_writes = s.block_writes;
            sorted.free(&em);
        }
    }
}

#[test]
fn theorem_4_5_write_shape_across_grid() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for (m, b, k, n) in [
        (32usize, 4usize, 1usize, 4000usize),
        (32, 4, 4, 4000),
        (64, 8, 2, 8000),
    ] {
        let em = EmMachine::new(EmConfig::new(m, b, 8).with_slack(samplesort_slack(m, b, k)));
        let input = Workload::UniformRandom.generate(n, 6);
        let v = EmVec::stage(&em, &input);
        em.reset_stats();
        let sorted = aem_samplesort(&em, v, k, &mut rng).expect("sort");
        assert_eq!(sorted.len(), n);
        let s = em.stats();
        let blocks = n.div_ceil(b) as u64;
        let levels = ceil_log_base((k * m) as f64 / b as f64, blocks as f64);
        assert!(
            s.block_writes <= 4 * blocks * levels,
            "(m={m},b={b},k={k}): writes {} beyond O-envelope {}",
            s.block_writes,
            4 * blocks * levels
        );
        // Reads may be k-fold but not worse than (k + constant) per level.
        assert!(
            s.block_reads <= (k as u64 + 4) * 4 * blocks * levels,
            "(m={m},b={b},k={k}): reads {} out of envelope",
            s.block_reads
        );
    }
}

#[test]
fn theorem_4_10_amortized_pq_costs() {
    let (m, b) = (32usize, 4usize);
    for k in [1usize, 2, 4] {
        let em = EmMachine::new(EmConfig::new(m, b, 8).with_slack(pq_slack(m, b, k)));
        let n = 4000usize;
        let input = Workload::UniformRandom.generate(n, 8);
        let v = EmVec::stage(&em, &input);
        em.reset_stats();
        let sorted = aem_heapsort(&em, v, k).expect("sort");
        assert_eq!(sorted.len(), n);
        let s = em.stats();
        let ops = (2 * n) as f64;
        let levels = 1.0 + (n as f64).ln() / (((k * m) as f64 / b as f64).ln());
        let reads_per_op = s.block_reads as f64 / ops;
        let writes_per_op = s.block_writes as f64 / ops;
        // Envelopes: 12x the formula constants (buffer trees are constant-
        // heavy; what matters is the k and B scaling).
        assert!(
            reads_per_op <= 12.0 * (k as f64 / b as f64) * levels,
            "k={k}: reads/op {reads_per_op:.3}"
        );
        assert!(
            writes_per_op <= 12.0 * (1.0 / b as f64) * levels,
            "k={k}: writes/op {writes_per_op:.3}"
        );
    }
}

#[test]
fn corollary_4_4_improvement_region() {
    // Sweep k at fixed machine; verify the best k beats k=1 whenever some
    // k in the predicted region exists, and that the predicted-region
    // condition k/log k < omega/log(M/B) identifies it.
    let (m, b, omega, n) = (64usize, 8usize, 16u64, 20_000usize);
    let input = Workload::UniformRandom.generate(n, 10);
    let cost = |k: usize| {
        let em = EmMachine::new(EmConfig::new(m, b, omega).with_slack(mergesort_slack(m, b, k)));
        let v = EmVec::stage(&em, &input);
        em.reset_stats();
        let sorted = aem_mergesort(&em, v, k).expect("sort");
        sorted.free(&em);
        em.io_cost()
    };
    let classic = cost(1);
    let threshold = omega as f64 / ((m / b) as f64).log2();
    let improving: Vec<usize> = (2..=omega as usize)
        .filter(|&k| (k as f64) / (k as f64).log2() < threshold)
        .collect();
    assert!(
        !improving.is_empty(),
        "this grid point should have an improvement region"
    );
    let best_in_region = improving.iter().map(|&k| cost(k)).min().expect("some k");
    assert!(
        best_in_region < classic,
        "some k in the Corollary 4.4 region must beat classic: {best_in_region} vs {classic}"
    );
}

#[test]
fn writes_decrease_monotonically_in_level_count() {
    // Increasing k can only reduce (or keep) the number of merge levels,
    // hence block writes must be non-increasing in k.
    let (m, b, n) = (32usize, 4usize, 10_000usize);
    let input = Workload::UniformRandom.generate(n, 11);
    let mut last = u64::MAX;
    for k in [1usize, 2, 4, 8] {
        let em = EmMachine::new(EmConfig::new(m, b, 8).with_slack(mergesort_slack(m, b, k)));
        let v = EmVec::stage(&em, &input);
        em.reset_stats();
        let sorted = aem_mergesort(&em, v, k).expect("sort");
        sorted.free(&em);
        let w = em.stats().block_writes;
        assert!(
            w <= last,
            "writes must not increase with k: {w} after {last}"
        );
        last = w;
    }
}

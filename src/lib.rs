//! Umbrella crate re-exporting the full workspace API. See README.md.
pub use asym_core as core;
pub use asym_model as model;
pub use cache_sim;
pub use em_sim;
pub use wd_sim;

//! # asym-sort — *Sorting with Asymmetric Read and Write Costs*, executable
//!
//! Umbrella crate re-exporting the full workspace API (see `README.md` for
//! the crate map). Each machine model of the paper (Blelloch, Fineman,
//! Gibbons, Gu, Shun; SPAA 2015) lives in its own crate; this crate exists so
//! downstream users and the integration tests can reach everything through
//! one dependency.
//!
//! * [`core`] (`asym-core`) — the algorithms, organized by model: `ram`,
//!   `pram`, `em`, `co`, `par` — fronted by the unified job API in
//!   `core::sort` (`SortSpec` + `Sorter` registry).
//! * [`model`] (`asym-model`) — the shared cost substrate: `omega`-weighted
//!   [`model::CostModel`], counters, records, workloads.
//! * [`cache_sim`] — the Asymmetric Ideal-Cache simulator (LRU, read-write
//!   LRU, offline MIN).
//! * [`em_sim`] — the Asymmetric External Memory machine (block transfers,
//!   leased primary memory).
//! * [`wd_sim`] — the Asymmetric PRAM work-depth cost algebra and
//!   work-stealing scheduler simulation.
//! * [`serve`] (`asym-serve`) — sort-as-a-service: a worker-pool job
//!   server with cost-model admission control and an HTTP/1.1 front door
//!   speaking the `core::sort::wire` JSON formats.
//! * [`kv`] (`asym-kv`) — the ω-aware LSM key-value engine built on
//!   `em_sim` runs, with every compaction submitted to `serve` as a
//!   `predict()`-priced sort job and a policy model choosing
//!   leveling-vs-tiering per ω.
//!
//! # Example
//!
//! Sorting with O(n) writes on the Asymmetric RAM (§3 of the paper), and
//! verifying the write bound from measured counters:
//!
//! ```
//! use asym_sort::core::ram::tree_sort::tree_sort_with_counter;
//! use asym_sort::model::workload::Workload;
//! use asym_sort::model::MemCounter;
//!
//! let input = Workload::UniformRandom.generate(4096, 1);
//! let counter = MemCounter::new();
//! let (sorted, _stats) = tree_sort_with_counter(&input, &counter);
//!
//! assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
//! // O(n) writes: far fewer than the n log n of a conventional sort.
//! let n = input.len() as u64;
//! assert!(counter.writes() < 8 * n);
//! assert!(counter.reads() > n * 10); // the reads pay for the writes
//! ```

pub use asym_core as core;
pub use asym_kv as kv;
pub use asym_model as model;
pub use asym_serve as serve;
pub use cache_sim;
pub use em_sim;
pub use wd_sim;

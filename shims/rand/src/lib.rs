//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Implements the API subset this workspace uses: [`Rng::gen_range`] /
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`]'s `shuffle` / `choose_multiple`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given seed,
//! which is all the experiments require of it.

/// A source of random `u64`s. Object-safe core trait, mirroring `rand_core`.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that uniform samples of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let v = self.start + (rng.next_f64() as $t) * (self.end - self.start);
                // next_f64() < 1, but the multiply can round up to the
                // exclusive bound; fold that draw back onto the start.
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna), seeded via
    /// SplitMix64. Not the real `StdRng`'s ChaCha12, but deterministic and
    /// statistically solid, which is what the experiments rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// `amount` elements sampled without replacement, in random order.
        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            // Partial Fisher–Yates over an index table.
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5i64..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_is_accepted() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let _ = rng.gen_range(0..u64::MAX);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_without_replacement() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<u32> = (0..50).collect();
        let mut picked: Vec<u32> = v.choose_multiple(&mut rng, 20).copied().collect();
        assert_eq!(picked.len(), 20);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 20, "duplicates in choose_multiple");
        // Amount larger than the slice clamps.
        assert_eq!(v.choose_multiple(&mut rng, 500).count(), 50);
    }
}

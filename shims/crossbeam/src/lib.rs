//! Offline stand-in for the `crossbeam` crate (see `shims/README.md`).
//!
//! Provides only `crossbeam::scope`, delegating to [`std::thread::scope`]
//! (stable since Rust 1.63, which post-dates crossbeam's scoped threads).
//! Differences from the real crate: the closure passed to [`Scope::spawn`]
//! receives `()` instead of a nested scope handle (no caller here nests
//! spawns), and a panicking child thread propagates its panic out of
//! [`scope`] rather than being captured in the returned `Result` — callers
//! that `.expect()` the `Ok` observe the same behavior either way.

use std::any::Any;
use std::thread;

/// Result type of [`scope`], mirroring `crossbeam::thread::ScopedThreadBuilder`.
pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// A handle for spawning threads that may borrow from the enclosing scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure's argument is a placeholder for
    /// the real crate's nested-scope handle and is always `()` here.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Run `f` with a scope handle; all threads it spawns are joined before
/// `scope` returns (exactly the contract of `crossbeam::scope`).
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_can_borrow_and_mutate_disjointly() {
        let mut data = vec![0u32; 4];
        let chunks: Vec<&mut [u32]> = data.chunks_mut(1).collect();
        scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                s.spawn(move |_| chunk[0] = i as u32 * 10);
            }
        })
        .expect("scope");
        assert_eq!(data, vec![0, 10, 20, 30]);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().expect("join") * 2
        })
        .expect("scope");
        assert_eq!(v, 42);
    }
}

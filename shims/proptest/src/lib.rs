//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! A randomized-input test harness with proptest's surface syntax but none
//! of its shrinking: each `proptest!` test runs `ProptestConfig::cases`
//! cases with inputs drawn from [`Strategy`] values, seeded deterministically
//! from the test's name so failures reproduce. On failure the case number is
//! reported before the panic propagates.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to [`Strategy::generate`].
pub type TestRng = StdRng;

/// Harness configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each test for `cases` random inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Build the deterministic per-test RNG (FNV-1a over the test name).
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Values with a canonical "any value" strategy (mirrors `proptest::arbitrary`).
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, i8, i16, i32);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Range, Rng, Strategy, TestRng};

    /// Strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `element`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Path-compatible alias so `prop::collection::vec` resolves as it does with
/// the real crate's prelude.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define randomized-input tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` random inputs; a failing case reports
/// its index and re-panics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body
                ));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest shim: '{}' failed at case {}/{} (deterministic seed; rerun reproduces)",
                        stringify!($name), case, config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in 0u8..2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 2);
        }

        #[test]
        fn vec_strategy_respects_size_and_maps(
            v in prop::collection::vec((0u32..5, any::<bool>()), 2..6).prop_map(|p| p.len()),
        ) {
            prop_assert!((2..6).contains(&v));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::rng_for("t");
        let mut b = crate::rng_for("t");
        let s = 0u64..1000;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}

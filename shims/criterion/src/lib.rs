//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! A real — if statistically unsophisticated — wall-clock harness: each
//! benchmark is warmed up for `warm_up_time`, then timed for `sample_size`
//! samples, and min / mean / max per-iteration times are printed. The API
//! mirrors the subset of criterion 0.5 this workspace uses, so swapping in
//! the registry crate requires no benchmark-code changes.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: a function name plus a parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `new("sort", 1024)` displays as `sort/1024`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times a closure over warmup + measurement phases.
pub struct Bencher {
    warm_up: Duration,
    samples: usize,
    /// (min, mean, max) per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Benchmark `f`, storing min/mean/max per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        // Batch size chosen so each sample is long enough to time reliably.
        let per_iter = if warm_iters == 0 {
            self.warm_up
        } else {
            self.warm_up / warm_iters as u32
        };
        let batch = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).max(1);
        let (mut min, mut max, mut total) = (Duration::MAX, Duration::ZERO, Duration::ZERO);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let sample = start.elapsed() / batch as u32;
            min = min.min(sample);
            max = max.max(sample);
            total += sample;
        }
        self.result = Some((min, total / self.samples as u32, max));
    }
}

/// A named collection of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up: Duration,
    #[allow(dead_code)]
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warmup duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Accepted for API compatibility; the shim's measurement length is
    /// `sample_size` samples of an adaptively chosen batch size.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            samples: self.sample_size,
            result: None,
        };
        f(&mut b, input);
        self.report(&id.name, b.result);
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            samples: self.sample_size,
            result: None,
        };
        f(&mut b);
        self.report(name, b.result);
        self
    }

    fn report(&mut self, name: &str, result: Option<(Duration, Duration, Duration)>) {
        match result {
            Some((min, mean, max)) => println!(
                "{}/{:<40} min {:>12.3?}   mean {:>12.3?}   max {:>12.3?}",
                self.name, name, min, mean, max
            ),
            None => println!("{}/{:<40} (no iterations run)", self.name, name),
        }
        self.criterion.benchmarks_run += 1;
    }

    /// End the group (prints a trailing newline, like criterion's summary).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Start a named benchmark group with default settings.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

/// Expands to a runner function invoking each benchmark fn with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Expands to `fn main` running every group (CLI args from `cargo bench`
/// are ignored, as the shim has no filtering).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("shim-test");
            g.sample_size(3).warm_up_time(Duration::from_millis(1));
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn benchmark_id_formats_name_and_param() {
        assert_eq!(BenchmarkId::new("sort", 1024).to_string(), "sort/1024");
    }
}

//! An external-memory job scheduler on the §4.3 priority queue.
//!
//! ```text
//! cargo run --release --example priority_scheduler
//! ```
//!
//! A burst-heavy stream of timestamped jobs flows through the buffer-tree
//! priority queue with its α (in-memory) and β (implicit-deletion) working
//! sets. We process interleaved bursts of submissions and dispatches and
//! compare the measured amortized reads/writes per operation against the
//! Theorem 4.10 formulas O((k/B)(1 + log_{kM/B} n)) and
//! O((1/B)(1 + log_{kM/B} n)).

use asym_core::em::pq::{pq_slack, AemPriorityQueue};
use asym_model::stats::log_base;
use asym_model::table::{f3, Table};
use asym_model::Record;
use em_sim::{EmConfig, EmMachine};
use rand::{Rng, SeedableRng};

fn main() {
    let (m, b, omega) = (64usize, 8usize, 8u64);
    let jobs = 30_000usize;
    println!("scheduling {jobs} jobs through the buffer-tree priority queue (M={m}, B={b})\n");

    let mut table = Table::new(
        "amortized cost per operation vs Theorem 4.10",
        &[
            "k",
            "ops",
            "reads/op",
            "writes/op",
            "formula reads/op",
            "formula writes/op",
        ],
    );

    for k in [1usize, 2, 4] {
        let em = EmMachine::new(EmConfig::new(m, b, omega).with_slack(pq_slack(m, b, k)));
        let mut pq = AemPriorityQueue::new(em.clone(), k).expect("pq");
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut ops = 0u64;
        let mut next_id = 0u64;
        let mut queued = 0usize;
        let mut dispatched: Vec<Record> = Vec::new();
        // Bursts: submit 1..200 jobs, then dispatch 1..150.
        while ops < jobs as u64 {
            let submit = rng.gen_range(1..200usize);
            for _ in 0..submit {
                // Priority = deadline; id breaks ties.
                let job = Record::new(rng.gen_range(0..1_000_000), next_id);
                next_id += 1;
                pq.insert(job).expect("insert");
                queued += 1;
                ops += 1;
            }
            let dispatch = rng.gen_range(1..150usize).min(queued);
            let mut burst_prev: Option<Record> = None;
            for _ in 0..dispatch {
                let job = pq.delete_min().expect("delete").expect("non-empty");
                // Within one dispatch burst (no interleaved submissions) the
                // priorities must come out non-decreasing.
                if let Some(prev) = burst_prev {
                    assert!(prev <= job, "burst dispatch order violated");
                }
                burst_prev = Some(job);
                dispatched.push(job);
                queued -= 1;
                ops += 1;
            }
        }
        let s = em.stats();
        let levels = 1.0 + log_base((k * m) as f64 / b as f64, jobs as f64);
        table.row(&[
            k.to_string(),
            ops.to_string(),
            f3(s.block_reads as f64 / ops as f64),
            f3(s.block_writes as f64 / ops as f64),
            f3(k as f64 / b as f64 * levels),
            f3(1.0 / b as f64 * levels),
        ]);
    }
    table.note("formula columns are the Theorem 4.10 bounds without their hidden constants");
    println!("{table}");
}

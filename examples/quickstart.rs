//! Quickstart: the three machine models in one tour.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. RAM: sort with O(n) writes via the red-black tree (§3) and compare
//!    against an ordinary mergesort under asymmetric cost.
//! 2. AEM: sort on the external-memory machine with the k = ω mergesort
//!    (Algorithm 2) and see block writes shrink versus the classic k = 1.
//! 3. Ideal-Cache: run the cache-oblivious sort (§5.1 / Figure 1) under an
//!    LRU cache and watch dirty writebacks drop as ω grows.

use asym_core::co::co_asym_sort;
use asym_core::ram::tree_sort::{mergesort_baseline, tree_sort_with_counter};
use asym_core::sort::{self, Algorithm, SortSpec};
use asym_model::workload::Workload;
use asym_model::{CostModel, MemCounter};
use cache_sim::{CacheConfig, PolicyChoice, SimArray, Tracker};

fn main() {
    let n = 1 << 15;
    let omega = 8u64;
    let input = Workload::UniformRandom.generate(n, 42);
    let model = CostModel::new(omega);

    println!("== 1. Asymmetric RAM (omega = {omega}) ==");
    let c_tree = MemCounter::new();
    let (sorted, stats) = tree_sort_with_counter(&input, &c_tree);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let c_base = MemCounter::new();
    mergesort_baseline(&input, &c_base);
    println!(
        "  tree sort : {:>9} reads {:>9} writes  cost {:>10}  ({} rotations)",
        c_tree.reads(),
        c_tree.writes(),
        model.cost_of(&c_tree),
        stats.rotations
    );
    println!(
        "  mergesort : {:>9} reads {:>9} writes  cost {:>10}",
        c_base.reads(),
        c_base.writes(),
        model.cost_of(&c_base)
    );
    println!(
        "  -> write-efficient sorting is {:.2}x cheaper\n",
        model.cost_of(&c_base) as f64 / model.cost_of(&c_tree) as f64
    );

    // The AEM tour runs through the unified sort API: one validated
    // `SortSpec` per job, dispatched by the registry. `from_env` absorbs
    // `ASYM_BENCH_BACKEND=file` (swap the in-memory slab for a real temp
    // file — modeled costs are identical by construction; only wall-clock
    // time changes).
    let (m, b) = (256usize, 16usize);
    let probe = SortSpec::builder(Algorithm::Mergesort, m, b, omega)
        .from_env()
        .expect("parse ASYM_BENCH_* environment")
        .build()
        .expect("valid spec");
    println!(
        "== 2. Asymmetric External Memory (M={m}, B={b}, omega={omega}, backend={}) ==",
        probe.backend()
    );
    let mut best = (0usize, u64::MAX);
    for k in [1usize, 2, 4, 8] {
        let spec = SortSpec::builder(Algorithm::Mergesort, m, b, omega)
            .k(k)
            .from_env()
            .expect("parse ASYM_BENCH_* environment")
            .build()
            .expect("valid spec");
        let outcome = sort::run(&spec, &input).expect("sort");
        assert_eq!(outcome.output.len(), n);
        if outcome.io_cost() < best.1 {
            best = (k, outcome.io_cost());
        }
        println!(
            "  k={k:>2}: {:>7} block reads {:>7} block writes  I/O cost {:>9}",
            outcome.stats.block_reads,
            outcome.stats.block_writes,
            outcome.io_cost()
        );
    }
    println!(
        "  -> k={} wins: Corollary 4.4 predicts improvements while k/log k < omega/log(M/B) = {:.2}\n",
        best.0,
        omega as f64 / ((m / b) as f64).log2()
    );

    println!("== 3. Asymmetric Ideal-Cache (M=4096 cells, B=16, omega={omega}) ==");
    for w in [1usize, omega as usize] {
        let cfg = CacheConfig::new(4096, 16, omega);
        let t = Tracker::new(cfg, PolicyChoice::Lru);
        let mut a = SimArray::from_vec(&t, input.clone());
        let tel = co_asym_sort(&mut a, 0, n, w, 1024);
        t.flush();
        let s = t.stats();
        println!(
            "  algorithm omega={w:>2}: {:>7} loads {:>6} writebacks  cost {:>9}   \
             ({} subarrays, {} buckets)",
            s.loads,
            s.writebacks,
            s.cost(omega),
            tel.subarrays,
            tel.buckets
        );
    }
    println!("  -> the omega-aware sort spends reads to cut dirty evictions");
}

//! Key-value stores on an asymmetric memory (§3's dictionary claim, plus
//! the full ω-aware LSM engine).
//!
//! ```text
//! cargo run --release --example kv_store
//! ```
//!
//! Part 1 — flat stores: an update-heavy workload (puts, overwrites,
//! deletes, lookups) runs through the red-black-tree dictionary, which
//! performs O(log n) reads but only O(1) amortized writes per update,
//! against the sorted-array strawman from `asym_kv::baseline` — the "just
//! keep it compact" store paying Θ(n) record moves per update. At PCM-like
//! ω the asymmetric cost gap is the point of the section.
//!
//! Part 2 — the real engine: the same stream goes through [`asym_kv`]'s
//! LSM engine twice, once per compaction style, with every compaction
//! submitted to the sort service as a `predict()`-priced job. Tiering
//! trades probe reads for far fewer ω-weighted writes — the E14 frontier,
//! live.

use asym_core::ram::dict::RamDictionary;
use asym_kv::baseline::SortedArrayStore;
use asym_kv::{AsymKv, CompactionStyle, KvConfig, Policy};
use asym_model::table::{f2, f3, Table};
use asym_model::{CostModel, MemCounter};
use rand::{Rng, SeedableRng};

fn main() {
    let ops = 60_000usize;
    let key_space = 20_000u64;
    println!("update-heavy KV workload: {ops} ops over {key_space} keys\n");

    let mut table = Table::new(
        "write-efficient dictionary vs sorted-array store",
        &[
            "store",
            "reads/op",
            "writes/op",
            "cost/op @ omega=8",
            "cost/op @ omega=26",
        ],
    );

    // Run the identical op stream through both flat stores. The sorted
    // array lives in asym_kv::baseline now, with the unified charging rule:
    // a probe of an empty store reads nothing (the in-example version used
    // to charge one read for it).
    let dict_counter = MemCounter::new();
    let array_counter = MemCounter::new();
    let mut dict = RamDictionary::new(dict_counter.clone());
    let mut array = SortedArrayStore::new(array_counter.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    for _ in 0..ops {
        let k = rng.gen_range(0..key_space);
        match rng.gen_range(0..10) {
            0..=4 => {
                let v = rng.gen_range(0..1_000_000);
                dict.insert(k, v);
                array.put(k, v);
            }
            5 => {
                let a = dict.remove(k).is_some();
                let b = array.delete(k);
                assert_eq!(a, b, "stores must agree on deletions");
            }
            _ => {
                assert_eq!(dict.get(k), array.get(k), "stores must agree on reads");
            }
        }
    }
    for (name, c) in [
        ("rb-dictionary", &dict_counter),
        ("sorted-array", &array_counter),
    ] {
        let per = |x: u64| x as f64 / ops as f64;
        table.row(&[
            name.to_string(),
            f3(per(c.reads())),
            f3(per(c.writes())),
            f2(per(CostModel::new(8).cost_of(c))),
            f2(per(CostModel::new(26).cost_of(c))),
        ]);
    }
    println!("{table}");
    println!("every answer was cross-checked between the two stores during the run;");
    println!("the dictionary's O(1) writes/op is what survives an omega = 26 memory.\n");

    // Part 2: block-granular LSM engine, compactions as admitted sort jobs.
    let omega = 8u64;
    let lsm_ops = 12_000u64;
    let mut lsm = Table::new(
        format!("asym-kv LSM engine, {lsm_ops} ops, omega={omega} (engine + compaction jobs)"),
        &[
            "style",
            "T",
            "reads",
            "writes",
            "cost/op",
            "compaction jobs",
        ],
    );
    for style in [CompactionStyle::Leveling, CompactionStyle::Tiering] {
        let mut cfg = KvConfig::new(omega);
        cfg.m = 1024;
        cfg.b = 32;
        cfg.memtable_cap = 128;
        cfg.policy = Policy::fixed(style, 4);
        let mut kv = AsymKv::new(cfg).expect("engine");
        let mut x = 0x5EED_u64;
        for _ in 0..lsm_ops {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % key_space;
            match x % 10 {
                0 => {
                    kv.delete(key).expect("delete");
                }
                1 => {
                    let _ = kv.get(key).expect("get");
                }
                _ => kv.put(key, x).expect("put"),
            }
        }
        kv.flush().expect("flush");
        let stats = kv.total_stats();
        lsm.row(&[
            style.name().to_string(),
            kv.config().policy.t.to_string(),
            stats.block_reads.to_string(),
            stats.block_writes.to_string(),
            f2(kv.total_cost() as f64 / lsm_ops as f64),
            kv.compactions().len().to_string(),
        ]);
    }
    lsm.note("every compaction was a sort job priced by predict() and admitted by the service");
    println!("{lsm}");
    let chosen = Policy::for_omega(omega);
    println!(
        "Policy::for_omega({omega}) would pick {} with T={} for a 90%-update workload.",
        chosen.style.name(),
        chosen.t
    );
}

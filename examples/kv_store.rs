//! A write-efficient key-value store on NVM (§3's dictionary claim).
//!
//! ```text
//! cargo run --release --example kv_store
//! ```
//!
//! An update-heavy KV workload (puts, overwrites, deletes, lookups) runs
//! through the red-black-tree dictionary, which performs O(log n) reads but
//! only O(1) amortized writes per update. A sorted-array baseline — the
//! "just keep it compact" strawman — pays Θ(n) record moves per update.
//! At PCM-like ω the asymmetric cost gap is the point of the section.

use asym_core::ram::dict::RamDictionary;
use asym_model::table::{f2, f3, Table};
use asym_model::{CostModel, MemCounter};
use rand::{Rng, SeedableRng};

/// Sorted-array baseline with counted record moves.
struct SortedArrayStore {
    data: Vec<(u64, u64)>,
    counter: MemCounter,
}

impl SortedArrayStore {
    fn new(counter: MemCounter) -> Self {
        Self {
            data: Vec::new(),
            counter,
        }
    }

    fn put(&mut self, k: u64, v: u64) {
        let pos = self.data.partition_point(|&(dk, _)| dk < k);
        self.counter
            .add_reads((self.data.len().max(1)).ilog2() as u64 + 1);
        if pos < self.data.len() && self.data[pos].0 == k {
            self.counter.write();
            self.data[pos].1 = v;
        } else {
            // Shifting the tail moves every record once.
            let moved = (self.data.len() - pos) as u64;
            self.counter.add_reads(moved);
            self.counter.add_writes(moved + 1);
            self.data.insert(pos, (k, v));
        }
    }

    fn get(&self, k: u64) -> Option<u64> {
        self.counter
            .add_reads((self.data.len().max(1)).ilog2() as u64 + 1);
        let pos = self.data.partition_point(|&(dk, _)| dk < k);
        (pos < self.data.len() && self.data[pos].0 == k).then(|| self.data[pos].1)
    }

    fn delete(&mut self, k: u64) -> bool {
        let pos = self.data.partition_point(|&(dk, _)| dk < k);
        self.counter
            .add_reads((self.data.len().max(1)).ilog2() as u64 + 1);
        if pos < self.data.len() && self.data[pos].0 == k {
            let moved = (self.data.len() - pos - 1) as u64;
            self.counter.add_reads(moved);
            self.counter.add_writes(moved);
            self.data.remove(pos);
            true
        } else {
            false
        }
    }
}

fn main() {
    let ops = 60_000usize;
    let key_space = 20_000u64;
    println!("update-heavy KV workload: {ops} ops over {key_space} keys\n");

    let mut table = Table::new(
        "write-efficient dictionary vs sorted-array store",
        &[
            "store",
            "reads/op",
            "writes/op",
            "cost/op @ omega=8",
            "cost/op @ omega=26",
        ],
    );

    // Run the identical op stream through both stores.
    let dict_counter = MemCounter::new();
    let array_counter = MemCounter::new();
    let mut dict = RamDictionary::new(dict_counter.clone());
    let mut array = SortedArrayStore::new(array_counter.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    for _ in 0..ops {
        let k = rng.gen_range(0..key_space);
        match rng.gen_range(0..10) {
            0..=4 => {
                let v = rng.gen_range(0..1_000_000);
                dict.insert(k, v);
                array.put(k, v);
            }
            5 => {
                let a = dict.remove(k).is_some();
                let b = array.delete(k);
                assert_eq!(a, b, "stores must agree on deletions");
            }
            _ => {
                assert_eq!(dict.get(k), array.get(k), "stores must agree on reads");
            }
        }
    }
    for (name, c) in [
        ("rb-dictionary", &dict_counter),
        ("sorted-array", &array_counter),
    ] {
        let per = |x: u64| x as f64 / ops as f64;
        table.row(&[
            name.to_string(),
            f3(per(c.reads())),
            f3(per(c.writes())),
            f2(per(CostModel::new(8).cost_of(c))),
            f2(per(CostModel::new(26).cost_of(c))),
        ]);
    }
    println!("{table}");
    println!("every answer was cross-checked between the two stores during the run;");
    println!("the dictionary's O(1) writes/op is what survives an omega = 26 memory.");
}

//! Dense linear algebra with expensive writes: §5.3 matrix multiplication.
//!
//! ```text
//! cargo run --release --example matrix_pipeline
//! ```
//!
//! One step of a dense pipeline (C = A·B) executed four ways on the
//! asymmetric ideal-cache simulator: the naive triple loop, the EM blocked
//! algorithm (Theorem 5.2), the standard 4-way cache-oblivious recursion,
//! and the paper's ω²-way recursion with randomized first round
//! (Theorem 5.3). All four produce identical numerical results; the I/O
//! table shows who pays reads and who pays ω-weighted writebacks.

use asym_core::co::matmul::{host_matmul, mm_co_4way, mm_co_asym, mm_em_blocked, mm_naive};
use asym_model::table::Table;
use cache_sim::{CacheConfig, PolicyChoice, SimArray, Tracker};
use rand::{Rng, SeedableRng};

fn main() {
    let n = 128usize;
    let omega = 16u64;
    let (m_cells, b_cells) = (2048usize, 16usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let a_host: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b_host: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let reference = host_matmul(&a_host, &b_host, n);
    println!("C = A x B at n={n} on a simulated cache (M={m_cells}, B={b_cells}, omega={omega})\n");

    let mut table = Table::new(
        "matrix multiplication I/O under LRU",
        &["algorithm", "loads", "writebacks", "cost", "max |err|"],
    );
    type MmFn<'a> = &'a dyn Fn(&SimArray<f64>, &SimArray<f64>, &mut SimArray<f64>);
    let mut run = |name: &str, f: MmFn| {
        let cfg = CacheConfig::new(m_cells, b_cells, omega);
        let t = Tracker::new(cfg, PolicyChoice::Lru);
        let a = SimArray::from_vec(&t, a_host.clone());
        let b = SimArray::from_vec(&t, b_host.clone());
        let mut c = SimArray::filled(&t, n * n, 0.0);
        f(&a, &b, &mut c);
        t.flush();
        let s = t.stats();
        let err = c
            .peek_slice()
            .iter()
            .zip(&reference)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-9, "{name} numerical mismatch");
        table.row(&[
            name.to_string(),
            s.loads.to_string(),
            s.writebacks.to_string(),
            s.cost(omega).to_string(),
            format!("{err:.1e}"),
        ]);
    };

    run("naive", &|a, b, c| mm_naive(a, b, c, n));
    let tile = ((m_cells / 3) as f64).sqrt() as usize;
    let tile = (1..=tile)
        .rev()
        .find(|t| n.is_multiple_of(*t))
        .expect("divisor");
    run("em-blocked", &|a, b, c| mm_em_blocked(a, b, c, n, tile));
    run("co-4way", &|a, b, c| mm_co_4way(a, b, c, n));
    run("co-asym (det)", &|a, b, c| {
        mm_co_asym(a, b, c, n, omega as usize, None)
    });
    run("co-asym (rand)", &|a, b, c| {
        let mut r = rand::rngs::StdRng::seed_from_u64(11);
        mm_co_asym(a, b, c, n, omega as usize, Some(&mut r))
    });
    println!("{table}");
    println!("the omega^2-way recursion keeps each C block resident across its omega");
    println!("sequential sub-products, so dirty evictions fall versus the 4-way split.");
}

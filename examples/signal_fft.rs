//! Spectral analysis on NVM: the §5.2 write-efficient FFT.
//!
//! ```text
//! cargo run --release --example signal_fft
//! ```
//!
//! A synthetic two-tone signal is transformed with the standard six-step
//! cache-oblivious FFT and the paper's asymmetric variant (brute-force
//! ω-point column DFTs). Both run against the simulated LRU cache; the
//! asymmetric variant trades ~ω× reads in the brute-force stage for fewer
//! recursion levels and therefore fewer dirty writebacks. The detected
//! spectral peaks confirm both transforms compute the same DFT.

use asym_core::co::{fft, Cplx, FftVariant};
use asym_model::table::Table;
use cache_sim::{CacheConfig, PolicyChoice, SimArray, Tracker};
use std::f64::consts::PI;

fn main() {
    let n = 1 << 16;
    let omega = 16usize;
    let (f1, f2) = (1234usize, 9876usize);
    let signal: Vec<Cplx> = (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            Cplx::new(
                (2.0 * PI * f1 as f64 * x).sin() + 0.5 * (2.0 * PI * f2 as f64 * x).sin(),
                0.0,
            )
        })
        .collect();
    println!("transforming a {n}-point two-tone signal (tones at bins {f1} and {f2})\n");

    let mut table = Table::new(
        "six-step FFT on the asymmetric ideal cache (M=256, B=8)",
        &[
            "variant",
            "loads",
            "writebacks",
            "cost(omega=16)",
            "peak bins",
        ],
    );
    for (name, variant, w) in [
        ("standard", FftVariant::Standard, 1usize),
        ("asymmetric", FftVariant::Asymmetric, omega),
    ] {
        let cfg = CacheConfig::new(256, 8, omega as u64);
        let t = Tracker::new(cfg, PolicyChoice::Lru);
        let mut a = SimArray::from_vec(&t, signal.clone());
        fft(&mut a, 0, n, variant, w, 64);
        t.flush();
        let s = t.stats();
        // Find the two dominant positive-frequency bins.
        let mut mags: Vec<(usize, f64)> = (1..n / 2)
            .map(|i| {
                let v = a.peek(i);
                (i, (v.re * v.re + v.im * v.im).sqrt())
            })
            .collect();
        mags.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite"));
        let mut peaks = [mags[0].0, mags[1].0];
        peaks.sort_unstable();
        assert_eq!(peaks, [f1, f2], "{name}: wrong spectral peaks");
        table.row(&[
            name.to_string(),
            s.loads.to_string(),
            s.writebacks.to_string(),
            s.cost(omega as u64).to_string(),
            format!("{} {}", peaks[0], peaks[1]),
        ]);
    }
    println!("{table}");
    println!("both variants find the same tones; the asymmetric one pays reads to save writes.");
}

//! Sort-as-a-service: a multi-tenant session against the job server.
//!
//! ```text
//! cargo run --release --example sort_service
//! ```
//!
//! Starts an HTTP sort server on loopback, plays a small multi-tenant
//! session against it — mixed algorithms, a rejection, a file-backed job —
//! and prints the admission ledger. The point of the demo is the
//! admission-control claim: every decision is made *before* the sort runs,
//! from `SortSpec::predict()` alone, and the predicted peak memory is a
//! hard bound, so "admitted" means "cannot thrash".

use asym_core::sort::{Algorithm, SortSpec};
use asym_model::workload::Workload;
use asym_serve::{serve, JobRequest, JobState, ServiceConfig, SortService, SubmitError};
use em_sim::Backend;

fn main() {
    let root = std::env::temp_dir().join(format!("asym-sort-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // A budget that fits a few serial jobs, or the 4-lane parallel job
    // alone — small enough that this session sees a real rejection.
    let standard = SortSpec::builder(Algorithm::Mergesort, 64, 8, 16)
        .k(2)
        .build()
        .unwrap();
    let budget = 8 * 1024;
    let service =
        SortService::start(ServiceConfig::new(4, budget, root.clone())).expect("start service");
    let server = serve(service, "127.0.0.1:0").expect("bind");
    println!(
        "sort service on http://{} (budget {budget} B)\n",
        server.addr()
    );

    // Tenants with different shapes: the three serial sorts, the parallel
    // sample sort, and a file-backed job that gets its own directory.
    let tenants: Vec<(&str, JobRequest)> = vec![
        (
            "mergesort/uniform",
            JobRequest {
                spec: standard.clone(),
                workload: Workload::UniformRandom,
                records: 50_000,
                data_seed: 1,
                input: None,
                include_output: false,
                deadline_ms: None,
                checkpoint: false,
            },
        ),
        (
            "samplesort/zipf",
            JobRequest {
                spec: SortSpec::builder(Algorithm::Samplesort, 64, 8, 16)
                    .k(2)
                    .build()
                    .unwrap(),
                workload: Workload::Zipf,
                records: 50_000,
                data_seed: 2,
                input: None,
                include_output: false,
                deadline_ms: None,
                checkpoint: false,
            },
        ),
        (
            "par-samplesort/4-lanes",
            JobRequest {
                spec: SortSpec::builder(Algorithm::ParSamplesort, 64, 8, 16)
                    .lanes(4)
                    .build()
                    .unwrap(),
                workload: Workload::NearlySorted,
                records: 50_000,
                data_seed: 3,
                input: None,
                include_output: false,
                deadline_ms: None,
                checkpoint: false,
            },
        ),
        (
            "heapsort/file-backed",
            JobRequest {
                spec: SortSpec::builder(Algorithm::Heapsort, 64, 8, 16)
                    .backend(Backend::File)
                    .build()
                    .unwrap(),
                workload: Workload::FewDistinct,
                records: 20_000,
                data_seed: 4,
                input: None,
                include_output: false,
                deadline_ms: None,
                checkpoint: false,
            },
        ),
    ];

    println!("{:<28}{:>16}{:>12}", "tenant", "predicted B", "decision");
    let mut admitted = Vec::new();
    let mut deferred = Vec::new();
    for (name, job) in tenants {
        let predicted = job.predict().peak_bytes();
        match server.service().submit(job.clone()) {
            Ok(id) => {
                println!("{name:<28}{predicted:>16}{:>12}", format!("job {id}"));
                admitted.push((name, id));
            }
            Err(SubmitError::Rejected { available, .. }) => {
                println!(
                    "{name:<28}{predicted:>16}{:>12}  (only {available} B free — deferred)",
                    "REJECTED"
                );
                deferred.push((name, job));
            }
            Err(e) => println!("{name:<28}{predicted:>16}{e:>12}"),
        }
    }

    // The first wave finishing releases its predicted bytes; the deferred
    // tenants fit now. (A real client would retry on 429 with backoff.)
    for (_, id) in &admitted {
        server.service().wait(*id);
    }
    if !deferred.is_empty() {
        println!("\nfirst wave done — retrying deferred tenants:");
        for (name, job) in deferred {
            match server.service().submit(job) {
                Ok(id) => {
                    println!("  {name}: admitted as job {id}");
                    admitted.push((name, id));
                }
                Err(e) => println!("  {name}: still refused ({e})"),
            }
        }
    }

    println!();
    for (name, id) in admitted {
        let status = server.service().wait(id).expect("known job");
        match status.state {
            JobState::Completed => {
                // Telemetry is the wire-format SortOutcome; show headline numbers.
                let t = status.telemetry.expect("telemetry");
                let v = asym_model::json::Json::parse(&t).expect("parses");
                println!(
                    "job {id} ({name}): {} reads, {} writes, io cost {}",
                    v.get("reads").and_then(|x| x.as_u64()).unwrap_or(0),
                    v.get("writes").and_then(|x| x.as_u64()).unwrap_or(0),
                    v.get("io_cost").and_then(|x| x.as_u64()).unwrap_or(0),
                );
            }
            _ => println!("job {id} ({name}): {:?}", status.error),
        }
    }

    let stats = server.service().stats();
    println!(
        "\nsession: {} submitted, {} rejected, {} completed; peak in-flight {} / {} B",
        stats.submitted,
        stats.rejected,
        stats.completed,
        stats.peak_in_flight_bytes,
        stats.budget_bytes,
    );
    println!("audit log at {}", root.join("audit.jsonl").display());
}

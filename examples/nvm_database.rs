//! Bulk-loading a database index on NVM: the paper's motivating workload.
//!
//! ```text
//! cargo run --release --example nvm_database
//! ```
//!
//! A synthetic table of records must be sorted before building a clustered
//! index. On phase-change memory a 512 Mb chip is projected at 16 ns byte
//! reads versus 416 ns byte writes (§2 of the paper, citing Dong et al.),
//! i.e. ω ≈ 26. We sort the table with every algorithm in the unified
//! `asym_core::sort` registry — one `SortSpec` per (algorithm, k) cell, no
//! per-algorithm call sites — at k = 1 (the classic EM algorithms) and
//! write-saving k > 1, then convert block counts into projected device time
//! with those latencies.

use asym_core::sort::{sorters, Algorithm, SortSpec};
use asym_model::table::{f2, Table};
use asym_model::workload::Workload;

const READ_NS_PER_BLOCK: f64 = 16.0 * 16.0; // 16 records of 16 ns
const WRITE_NS_PER_BLOCK: f64 = 416.0 * 16.0;

fn main() {
    let n = 40_000;
    let omega = 26u64; // projected PCM write/read latency ratio
    let (m, b) = (512usize, 16usize);
    let table_rows = Workload::Zipf.generate(n, 7); // skewed keys, like real ids
    println!(
        "bulk-loading {n} rows through a {m}-record buffer pool, {b}-record pages, omega={omega}\n"
    );

    let mut table = Table::new(
        "projected PCM sort cost (16 ns reads / 416 ns writes per record)",
        &[
            "algorithm",
            "k",
            "block reads",
            "block writes",
            "I/O cost",
            "device ms",
        ],
    );

    for sorter in sorters() {
        // The buffer tree's deep k-sweeps dominate runtime; cap k like a DBA
        // would cap a maintenance window.
        let ks: &[usize] = if sorter.kind() == Algorithm::Heapsort {
            &[1, 8]
        } else {
            &[1, 8, 26]
        };
        for &k in ks {
            let spec = SortSpec::builder(sorter.kind(), m, b, omega)
                .k(k)
                .lanes(if sorter.kind().is_parallel() { 4 } else { 1 })
                .seed(3)
                .build()
                .expect("valid spec");
            let outcome = sorter.run(&spec, &table_rows).expect("sort");
            assert_eq!(
                outcome.output.len(),
                n,
                "{} must sort every row",
                sorter.name()
            );
            let s = outcome.stats;
            let ms = (s.block_reads as f64 * READ_NS_PER_BLOCK
                + s.block_writes as f64 * WRITE_NS_PER_BLOCK)
                / 1e6;
            table.row(&[
                sorter.name().to_string(),
                k.to_string(),
                s.block_reads.to_string(),
                s.block_writes.to_string(),
                outcome.io_cost().to_string(),
                f2(ms),
            ]);
        }
    }
    println!("{table}");
    println!("reading the table: k = 1 rows are the classic EM algorithms; the paper's");
    println!("write-efficient variants (k > 1) trade extra reads for fewer write levels,");
    println!("which is what the projected-milliseconds column rewards at omega = 26.");
    println!("(par-aem-samplesort rows: 4 lanes, merged work totals — same writes as serial.)");
}

//! Bulk-loading a database index on NVM: the paper's motivating workload.
//!
//! ```text
//! cargo run --release --example nvm_database
//! ```
//!
//! A synthetic table of records must be sorted before building a clustered
//! index. On phase-change memory a 512 Mb chip is projected at 16 ns byte
//! reads versus 416 ns byte writes (§2 of the paper, citing Dong et al.),
//! i.e. ω ≈ 26. We sort the table on the AEM simulator with each of the
//! three §4 algorithms at k = 1 (the classic EM algorithms) and k = ω, then
//! convert block counts into projected device time with those latencies.

use asym_core::em::{
    aem_heapsort, aem_mergesort, aem_samplesort, mergesort_slack, pq::pq_slack, samplesort_slack,
};
use asym_model::table::{f2, Table};
use asym_model::workload::Workload;
use em_sim::{EmConfig, EmMachine, EmVec};
use rand::SeedableRng;

const READ_NS_PER_BLOCK: f64 = 16.0 * 16.0; // 16 records of 16 ns
const WRITE_NS_PER_BLOCK: f64 = 416.0 * 16.0;

fn main() {
    let n = 40_000;
    let omega = 26u64; // projected PCM write/read latency ratio
    let (m, b) = (512usize, 16usize);
    let table_rows = Workload::Zipf.generate(n, 7); // skewed keys, like real ids
    println!(
        "bulk-loading {n} rows through a {m}-record buffer pool, {b}-record pages, omega={omega}\n"
    );

    let mut table = Table::new(
        "projected PCM sort cost (16 ns reads / 416 ns writes per record)",
        &[
            "algorithm",
            "k",
            "block reads",
            "block writes",
            "I/O cost",
            "device ms",
        ],
    );

    let mut run = |name: &str, k: usize, f: &dyn Fn(&EmMachine, EmVec, usize) -> EmVec| {
        let slack = mergesort_slack(m, b, k)
            .max(samplesort_slack(m, b, k))
            .max(pq_slack(m, b, k));
        let em = EmMachine::new(EmConfig::new(m, b, omega).with_slack(slack));
        let v = EmVec::stage(&em, &table_rows);
        let sorted = f(&em, v, k);
        assert_eq!(sorted.len(), n, "{name} must sort every row");
        let s = em.stats();
        let ms = (s.block_reads as f64 * READ_NS_PER_BLOCK
            + s.block_writes as f64 * WRITE_NS_PER_BLOCK)
            / 1e6;
        table.row(&[
            name.to_string(),
            k.to_string(),
            s.block_reads.to_string(),
            s.block_writes.to_string(),
            em.io_cost().to_string(),
            f2(ms),
        ]);
    };

    for k in [1usize, 8, 26] {
        run("mergesort", k, &|em, v, k| {
            aem_mergesort(em, v, k).expect("mergesort")
        });
    }
    for k in [1usize, 8, 26] {
        run("samplesort", k, &|em, v, k| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            aem_samplesort(em, v, k, &mut rng).expect("samplesort")
        });
    }
    for k in [1usize, 8] {
        run("heapsort", k, &|em, v, k| {
            aem_heapsort(em, v, k).expect("heapsort")
        });
    }
    println!("{table}");
    println!("reading the table: k = 1 rows are the classic EM algorithms; the paper's");
    println!("write-efficient variants (k > 1) trade extra reads for fewer write levels,");
    println!("which is what the projected-milliseconds column rewards at omega = 26.");
}
